// Unit tests for the geo replicator in isolation: a replicator wired to
// scripted fake peers/heads/tails on the simulator, covering dedup,
// same-key dependency self-satisfaction, parking/unparking, retransmission,
// and dependency probing.
#include <gtest/gtest.h>

#include <vector>

#include "src/geo/geo_replicator.h"
#include "src/msg/message.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace chainreaction {
namespace {

Version V(uint64_t lamport, DcId origin, std::initializer_list<uint64_t> vv) {
  Version v;
  v.lamport = lamport;
  v.origin = origin;
  v.vv = VersionVector(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    v.vv.Set(static_cast<DcId>(i++), c);
  }
  return v;
}

// Records every message it receives, optionally auto-confirming stability
// checks (playing a tail whose data is stable).
class ScriptedActor : public Actor {
 public:
  void OnMessage(Address from, std::string_view payload) override {
    from_addresses.push_back(from);
    payloads.emplace_back(payload);
    const MsgType type = PeekType(payload);
    counts[type]++;
    if (type == MsgType::kCrxStabilityCheck && auto_confirm_checks && env != nullptr) {
      CrxStabilityCheck check;
      ASSERT_TRUE(DecodeMessage(payload, &check));
      CrxStabilityConfirm confirm;
      confirm.token = check.token;
      confirm.key = check.key;
      env->Send(from, EncodeMessage(confirm));
    }
  }

  size_t CountOf(MsgType t) const {
    auto it = counts.find(t);
    return it == counts.end() ? 0 : it->second;
  }

  Env* env = nullptr;
  bool auto_confirm_checks = false;
  std::vector<Address> from_addresses;
  std::vector<std::string> payloads;
  std::map<MsgType, size_t> counts;
};

// Test fixture: replicator for DC 1 with a 3-node local ring, a scripted
// peer replicator (DC 0), and scripted local nodes.
class GeoReplicatorUnit : public ::testing::Test {
 protected:
  static constexpr Address kPeer = 900;
  static constexpr Address kSelf = 901;

  GeoReplicatorUnit() : net_(&sim_, NetworkConfig{{50, 0}, {1000, 0}, 0.0}, 1) {
    CrxConfig cfg;
    cfg.replication = 3;
    cfg.num_dcs = 2;
    const Ring local_ring({1, 2, 3}, 8, 3, 1);
    replicator_ = std::make_unique<GeoReplicator>(/*dc=*/1, cfg, local_ring);
    replicator_->AttachEnv(net_.Register(kSelf, replicator_.get(), 1));
    replicator_->SetPeers({kPeer, kSelf});

    peer_.env = net_.Register(kPeer, &peer_, 0);
    for (NodeId n = 1; n <= 3; ++n) {
      nodes_[n - 1].env = net_.Register(n, &nodes_[n - 1], 1);
    }
    ring_ = local_ring;
  }

  // Sends a message to the replicator as if from `from`, then runs the
  // simulation for a bounded window (the replicator's retransmission timer
  // keeps the event queue non-empty while shipments are unacknowledged, so
  // draining the queue would never return).
  template <typename M>
  void Tell(Address from, const M& msg) {
    if (from == kPeer) {
      peer_.env->Send(kSelf, EncodeMessage(msg));
    } else {
      nodes_[from - 1].env->Send(kSelf, EncodeMessage(msg));
    }
    sim_.RunUntil(sim_.Now() + 50 * kMillisecond);
  }

  ScriptedActor* NodeActor(NodeId n) { return &nodes_[n - 1]; }

  Simulator sim_;
  SimNetwork net_;
  std::unique_ptr<GeoReplicator> replicator_;
  ScriptedActor peer_;
  ScriptedActor nodes_[3];
  Ring ring_;
};

TEST_F(GeoReplicatorUnit, LocalStableWithPayloadShipsOnce) {
  GeoLocalStable stable;
  stable.key = "k";
  stable.version = V(10, 1, {0, 1});
  stable.has_payload = true;
  stable.value = "v";
  Tell(1, stable);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoShip), 1u);
  EXPECT_EQ(replicator_->updates_shipped(), 1u);

  // Duplicate notification (tail retry): no second shipment.
  Tell(1, stable);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoShip), 1u);
  // Both notifications acked back to the tail.
  EXPECT_EQ(NodeActor(1)->CountOf(MsgType::kGeoLocalStableAck), 2u);
}

TEST_F(GeoReplicatorUnit, RemoteOriginNotificationNotShipped) {
  GeoLocalStable stable;
  stable.key = "k";
  stable.version = V(10, 0, {1, 0});  // origin DC 0, not ours
  stable.has_payload = false;
  Tell(1, stable);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoShip), 0u);
}

TEST_F(GeoReplicatorUnit, ShipWithoutDepsInjectsAtHead) {
  GeoShip ship;
  ship.origin_dc = 0;
  ship.channel_seq = 1;
  ship.key = "k";
  ship.value = "v";
  ship.version = V(5, 0, {1, 0});
  Tell(kPeer, ship);
  const NodeId head = ring_.HeadFor("k");
  EXPECT_EQ(NodeActor(head)->CountOf(MsgType::kGeoRemotePut), 1u);
  EXPECT_EQ(replicator_->waiting_now(), 0u);
}

TEST_F(GeoReplicatorUnit, SameKeyOlderDepSelfSatisfied) {
  GeoShip ship;
  ship.origin_dc = 0;
  ship.channel_seq = 1;
  ship.key = "k";
  ship.value = "v2";
  ship.version = V(6, 0, {2, 0});
  ship.deps = {Dependency{"k", V(5, 0, {1, 0}), false}};  // carried by itself
  Tell(kPeer, ship);
  EXPECT_EQ(NodeActor(ring_.HeadFor("k"))->CountOf(MsgType::kGeoRemotePut), 1u);
  EXPECT_EQ(replicator_->updates_parked(), 0u);
}

TEST_F(GeoReplicatorUnit, UnmetDepParksAndProbesThenUnparks) {
  GeoShip ship;
  ship.origin_dc = 0;
  ship.channel_seq = 1;
  ship.key = "b";
  ship.value = "v";
  ship.version = V(6, 0, {1, 0});
  ship.deps = {Dependency{"a", V(5, 0, {1, 0}), false}};
  Tell(kPeer, ship);
  EXPECT_EQ(replicator_->updates_parked(), 1u);
  EXPECT_EQ(replicator_->waiting_now(), 1u);
  // A stability probe went to a's local tail.
  const NodeId a_tail = ring_.TailFor("a");
  EXPECT_EQ(NodeActor(a_tail)->CountOf(MsgType::kCrxStabilityCheck), 1u);

  // The dependency becomes locally stable (fast path notification).
  GeoLocalStable stable;
  stable.key = "a";
  stable.version = V(5, 0, {1, 0});
  stable.has_payload = false;
  Tell(1, stable);
  EXPECT_EQ(replicator_->waiting_now(), 0u);
  EXPECT_EQ(NodeActor(ring_.HeadFor("b"))->CountOf(MsgType::kGeoRemotePut), 1u);
}

TEST_F(GeoReplicatorUnit, ProbeConfirmAloneUnparks) {
  // No GeoLocalStable ever arrives (lost); the tail's confirm must suffice.
  NodeActor(ring_.TailFor("a"))->auto_confirm_checks = true;
  GeoShip ship;
  ship.origin_dc = 0;
  ship.channel_seq = 1;
  ship.key = "b";
  ship.value = "v";
  ship.version = V(6, 0, {1, 0});
  ship.deps = {Dependency{"a", V(5, 0, {1, 0}), false}};
  Tell(kPeer, ship);
  EXPECT_EQ(replicator_->waiting_now(), 0u);
  EXPECT_EQ(NodeActor(ring_.HeadFor("b"))->CountOf(MsgType::kGeoRemotePut), 1u);
}

TEST_F(GeoReplicatorUnit, AppliedUpdateAckedToOrigin) {
  GeoShip ship;
  ship.origin_dc = 0;
  ship.channel_seq = 7;
  ship.key = "k";
  ship.value = "v";
  ship.version = V(5, 0, {1, 0});
  Tell(kPeer, ship);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoApplied), 0u);  // not yet stable locally

  GeoLocalStable stable;
  stable.key = "k";
  stable.version = ship.version;
  stable.has_payload = false;
  Tell(2, stable);
  ASSERT_EQ(peer_.CountOf(MsgType::kGeoApplied), 1u);
  GeoApplied applied;
  for (const std::string& p : peer_.payloads) {
    if (PeekType(p) == MsgType::kGeoApplied) {
      ASSERT_TRUE(DecodeMessage(p, &applied));
    }
  }
  EXPECT_EQ(applied.channel_seq, 7u);
  EXPECT_EQ(applied.dest_dc, 1u);
}

TEST_F(GeoReplicatorUnit, DuplicateShipOfAppliedUpdateAckedImmediately) {
  GeoShip ship;
  ship.origin_dc = 0;
  ship.channel_seq = 7;
  ship.key = "k";
  ship.value = "v";
  ship.version = V(5, 0, {1, 0});
  Tell(kPeer, ship);
  GeoLocalStable stable;
  stable.key = "k";
  stable.version = ship.version;
  stable.has_payload = false;
  Tell(2, stable);
  ASSERT_EQ(peer_.CountOf(MsgType::kGeoApplied), 1u);

  // Retransmission of the same (already applied) update: immediate ack, no
  // second injection.
  const size_t injections = NodeActor(ring_.HeadFor("k"))->CountOf(MsgType::kGeoRemotePut);
  Tell(kPeer, ship);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoApplied), 2u);
  EXPECT_EQ(NodeActor(ring_.HeadFor("k"))->CountOf(MsgType::kGeoRemotePut), injections);
}

TEST_F(GeoReplicatorUnit, RetransmitsUnackedShipments) {
  GeoLocalStable stable;
  stable.key = "k";
  stable.version = V(10, 1, {0, 1});
  stable.has_payload = true;
  stable.value = "v";
  Tell(1, stable);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoShip), 1u);

  // No GeoApplied comes back; the retransmit timer must re-send.
  sim_.RunUntil(sim_.Now() + 600 * kMillisecond);
  EXPECT_GE(peer_.CountOf(MsgType::kGeoShip), 2u);
  EXPECT_GT(replicator_->retransmissions(), 0u);

  // Ack stops the retransmissions.
  GeoApplied applied;
  applied.dest_dc = 0;
  applied.channel_seq = 1;
  Tell(kPeer, applied);
  const size_t after_ack = peer_.CountOf(MsgType::kGeoShip);
  sim_.RunUntil(sim_.Now() + 1 * kSecond);
  EXPECT_EQ(peer_.CountOf(MsgType::kGeoShip), after_ack);
  EXPECT_EQ(replicator_->unacked_shipments(), 0u);
}

TEST_F(GeoReplicatorUnit, GlobalStableHookFires) {
  bool fired = false;
  replicator_->on_global_stable = [&](const Key& key, const Version&, Time shipped,
                                      Time now) {
    EXPECT_EQ(key, "k");
    EXPECT_GE(now, shipped);
    fired = true;
  };
  GeoLocalStable stable;
  stable.key = "k";
  stable.version = V(10, 1, {0, 1});
  stable.has_payload = true;
  stable.value = "v";
  Tell(1, stable);
  GeoApplied applied;
  applied.dest_dc = 0;
  applied.channel_seq = 1;
  Tell(kPeer, applied);
  EXPECT_TRUE(fired);
  EXPECT_EQ(replicator_->global_stable_delay().count(), 1u);
}

}  // namespace
}  // namespace chainreaction

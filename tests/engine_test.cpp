// Storage-engine tests: value-log record framing in the msg_test fuzz-lite
// idiom (round trip, truncation always fails, mutation never crashes,
// garbage rejected), disk-engine mechanics (append/read/release, sealing,
// compaction with remap, purge, manifest truncation), and the VersionedStore
// integration (residency cache eviction, metadata accessors, adoption).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/disk_engine.h"
#include "src/engine/log_record.h"
#include "src/engine/storage_engine.h"
#include "src/storage/checkpoint.h"
#include "src/storage/versioned_store.h"

namespace chainreaction {
namespace {

Version V(uint64_t lamport, DcId origin, std::initializer_list<uint64_t> vv) {
  Version v;
  v.lamport = lamport;
  v.origin = origin;
  v.vv = VersionVector(vv.size());
  size_t i = 0;
  for (uint64_t c : vv) {
    v.vv.Set(static_cast<DcId>(i++), c);
  }
  return v;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = ::testing::TempDir() + "crx_engine_" + tag + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::unique_ptr<StorageEngine> OpenDisk(const std::string& dir,
                                        uint64_t segment_bytes = 1u << 20,
                                        double garbage_ratio = 0.5) {
  DiskEngineOptions opts;
  opts.segment_bytes = segment_bytes;
  opts.compact_garbage_ratio = garbage_ratio;
  std::unique_ptr<StorageEngine> engine;
  const Status st = OpenDiskEngine(dir, opts, &engine);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return engine;
}

// --- record framing (fuzz-lite) -----------------------------------------

TEST(VlogRecord, RoundTripIsByteStable) {
  std::string a, b;
  const Version v = V(7, 1, {3, 9});
  EncodeVlogRecord("user42", v, "payload-bytes", &a);
  EncodeVlogRecord("user42", v, "payload-bytes", &b);
  EXPECT_EQ(a, b);  // deterministic encoding

  VlogRecord rec;
  ASSERT_TRUE(DecodeVlogRecord(a, &rec));
  EXPECT_EQ(rec.key, "user42");
  EXPECT_TRUE(rec.version == v);
  EXPECT_EQ(rec.value, "payload-bytes");
}

TEST(VlogRecord, EmptyValueRoundTrips) {
  std::string bytes;
  const uint32_t len = EncodeVlogRecord("k", V(1, 0, {1}), "", &bytes);
  EXPECT_EQ(len, bytes.size());
  EXPECT_GT(len, 0u);  // frame + crc + payload: never zero-length
  VlogRecord rec;
  ASSERT_TRUE(DecodeVlogRecord(bytes, &rec));
  EXPECT_TRUE(rec.value.empty());
}

TEST(VlogRecord, EveryTruncationFails) {
  std::string bytes;
  EncodeVlogRecord("key", V(5, 0, {5}), std::string(64, 'x'), &bytes);
  VlogRecord rec;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeVlogRecord(bytes.substr(0, cut), &rec)) << "cut=" << cut;
  }
}

TEST(VlogRecord, SingleByteMutationsAreDetected) {
  std::string bytes;
  EncodeVlogRecord("key", V(5, 0, {5}), "value-value-value", &bytes);
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (const uint8_t flip : {0x01, 0x80}) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      VlogRecord rec;
      // Must never crash; a flip anywhere (length, crc, payload) must be
      // rejected because the crc covers the payload and the frame length
      // must match the buffer exactly.
      EXPECT_FALSE(DecodeVlogRecord(mutated, &rec)) << "i=" << i;
    }
  }
}

TEST(VlogRecord, GarbageNeverCrashes) {
  Rng rng(0xE17);
  VlogRecord rec;
  for (int round = 0; round < 2000; ++round) {
    const size_t len = rng.NextBelow(128);
    std::string garbage(len, '\0');
    for (size_t i = 0; i < len; ++i) {
      garbage[i] = static_cast<char>(rng.NextBelow(256));
    }
    DecodeVlogRecord(garbage, &rec);  // outcome irrelevant; must not crash
  }
  EXPECT_FALSE(DecodeVlogRecord("definitely not a record", &rec));
}

// --- disk engine --------------------------------------------------------

TEST(DiskEngine, AppendReadRoundTrip) {
  ScratchDir dir("rt");
  auto engine = OpenDisk(dir.path());
  const ValueHandle h = engine->Append("k", V(1, 0, {1}), "hello-disk");
  ASSERT_TRUE(h.valid());
  Value out;
  ASSERT_TRUE(engine->Read(h, &out).ok());
  EXPECT_EQ(out, "hello-disk");
  const StorageEngineStats s = engine->Stats();
  EXPECT_EQ(s.appends, 1u);
  EXPECT_EQ(s.live_bytes, h.length);
  EXPECT_GE(s.log_bytes, static_cast<uint64_t>(h.length));
}

TEST(DiskEngine, SealsAndRotatesSegments) {
  ScratchDir dir("seal");
  auto engine = OpenDisk(dir.path(), /*segment_bytes=*/4096);
  std::vector<ValueHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(engine->Append("k" + std::to_string(i), V(i + 1, 0, {0}),
                                     std::string(256, 'v')));
  }
  EXPECT_GT(engine->Stats().segments, 1u);
  // Every handle still readable across seals.
  for (int i = 0; i < 64; ++i) {
    Value out;
    ASSERT_TRUE(engine->Read(handles[i], &out).ok()) << i;
    EXPECT_EQ(out, std::string(256, 'v'));
  }
}

TEST(DiskEngine, CompactionMovesOnlyLiveRecordsAndRemaps) {
  ScratchDir dir("compact");
  auto engine = OpenDisk(dir.path(), /*segment_bytes=*/4096, /*garbage_ratio=*/0.5);
  std::vector<std::pair<Version, ValueHandle>> live;
  for (int i = 0; i < 64; ++i) {
    const Version v = V(i + 1, 0, {0});
    const ValueHandle h = engine->Append("k" + std::to_string(i), v, std::string(200, 'a' + i % 26));
    if (i % 4 == 0) {
      live.emplace_back(v, h);
    } else {
      engine->Release(h);  // 75% garbage in sealed segments
    }
  }
  uint64_t remapped = 0;
  std::vector<std::pair<Version, ValueHandle>> updated = live;
  while (engine->MaybeCompact([&](const Key&, const Version&, const ValueHandle& oldh,
                                  const ValueHandle& newh) {
    remapped++;
    for (auto& [v, h] : updated) {
      if (h.segment == oldh.segment && h.offset == oldh.offset) {
        h = newh;
      }
    }
  })) {
  }
  EXPECT_GT(remapped, 0u);
  EXPECT_GT(engine->Stats().compactions, 0u);
  // All live values still readable through their remapped handles.
  for (size_t i = 0; i < updated.size(); ++i) {
    Value out;
    ASSERT_TRUE(engine->Read(updated[i].second, &out).ok()) << i;
    EXPECT_EQ(out.size(), 200u);
  }
  // Purge drops the fully-dead victims and shrinks the log.
  const uint64_t before = engine->Stats().log_bytes;
  engine->PurgeDeadSegments();
  const StorageEngineStats after = engine->Stats();
  EXPECT_GT(after.purged_segments, 0u);
  EXPECT_LT(after.log_bytes, before);
  for (size_t i = 0; i < updated.size(); ++i) {
    Value out;
    ASSERT_TRUE(engine->Read(updated[i].second, &out).ok()) << i;
  }
}

TEST(DiskEngine, ReopenAdoptTruncateRoundTrip) {
  ScratchDir dir("reopen");
  ValueHandle h1, h2;
  uint64_t manifest_seg = 0, manifest_size = 0;
  {
    auto engine = OpenDisk(dir.path());
    h1 = engine->Append("a", V(1, 0, {1}), "first");
    h2 = engine->Append("b", V(2, 0, {2}), "second");
    ASSERT_TRUE(engine->Flush().ok());
    engine->GetManifest(&manifest_seg, &manifest_size);
    // A post-"checkpoint" append that a recovery should discard.
    engine->Append("c", V(3, 0, {3}), "post-manifest");
  }
  auto engine = OpenDisk(dir.path());
  ASSERT_TRUE(engine->TruncateTo(manifest_seg, manifest_size).ok());
  EXPECT_TRUE(engine->AdoptLive(h1));
  EXPECT_TRUE(engine->AdoptLive(h2));
  // The discarded tail is beyond the truncated size now.
  ValueHandle past;
  past.segment = manifest_seg;
  past.offset = manifest_size;
  past.length = 16;
  EXPECT_FALSE(engine->AdoptLive(past));
  Value out;
  ASSERT_TRUE(engine->Read(h1, &out).ok());
  EXPECT_EQ(out, "first");
  ASSERT_TRUE(engine->Read(h2, &out).ok());
  EXPECT_EQ(out, "second");
}

TEST(DiskEngine, AdoptRejectsMissingSegment) {
  ScratchDir dir("badadopt");
  auto engine = OpenDisk(dir.path());
  ValueHandle bogus;
  bogus.segment = 999;
  bogus.offset = 0;
  bogus.length = 8;
  EXPECT_FALSE(engine->AdoptLive(bogus));
}

// --- store integration --------------------------------------------------

TEST(StoreWithDiskEngine, ServesDatasetBeyondCacheBudget) {
  ScratchDir dir("beyond");
  VersionedStore store;
  store.AttachEngine(OpenDisk(dir.path()));
  store.SetCacheBudget(8 * 1024);  // ~8 values of 1 KiB

  const std::string value(1024, 'v');
  for (int i = 0; i < 200; ++i) {
    const Key key = "key-" + std::to_string(i);
    store.Apply(key, value + std::to_string(i), V(i + 1, 0, {static_cast<uint64_t>(i + 1)}));
  }
  // Dataset is ~200 KiB against an 8 KiB budget: most values are evicted.
  EXPECT_LT(store.resident_bytes(), 32u * 1024);
  EXPECT_LT(store.resident_versions(), 32u);
  EXPECT_EQ(store.total_versions(), 200u);

  // Every value still correct (faulted in from the log on demand).
  for (int i = 0; i < 200; ++i) {
    const Key key = "key-" + std::to_string(i);
    const StoredVersion* sv = store.Latest(key);
    ASSERT_NE(sv, nullptr) << key;
    EXPECT_EQ(sv->value, value + std::to_string(i)) << key;
  }
  EXPECT_GT(store.cache_misses(), 0u);

  // Re-reading a small hot set is all cache hits (after one warm-up round
  // faults the four keys back in).
  for (int i = 0; i < 4; ++i) {
    store.Latest("key-" + std::to_string(i));
  }
  const uint64_t misses_before = store.cache_misses();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      store.Latest("key-" + std::to_string(i));
    }
  }
  EXPECT_EQ(store.cache_misses(), misses_before);
  EXPECT_GT(store.cache_hits(), 0u);
}

TEST(StoreWithDiskEngine, MetaAccessorsDoNotMaterialize) {
  ScratchDir dir("meta");
  VersionedStore store;
  store.AttachEngine(OpenDisk(dir.path()));
  store.SetCacheBudget(0);  // evict everything evictable

  for (int i = 0; i < 64; ++i) {
    const Key key = "key-" + std::to_string(i);
    const Version v = V(i + 1, 0, {static_cast<uint64_t>(i + 1)});
    store.Apply(key, std::string(512, 'x'), v);
    store.MarkStable(key, v);
  }
  const uint64_t misses_before = store.cache_misses();
  const uint64_t reads_before = store.engine()->Stats().reads;
  for (int i = 0; i < 64; ++i) {
    const Key key = "key-" + std::to_string(i);
    const Version v = V(i + 1, 0, {static_cast<uint64_t>(i + 1)});
    ASSERT_NE(store.LatestMeta(key), nullptr);
    EXPECT_TRUE(store.LatestMeta(key)->version == v);
    ASSERT_NE(store.FindMeta(key, v), nullptr);
    ASSERT_NE(store.LatestStableMeta(key), nullptr);
    EXPECT_FALSE(store.HasUnstable(key));
  }
  EXPECT_EQ(store.cache_misses(), misses_before);
  EXPECT_EQ(store.engine()->Stats().reads, reads_before);
}

TEST(StoreWithDiskEngine, GcReleasesLogSpaceAndCompactionReclaimsIt) {
  ScratchDir dir("gc");
  VersionedStore store;
  DiskEngineOptions opts;
  opts.segment_bytes = 16 * 1024;
  opts.compact_garbage_ratio = 0.5;
  std::unique_ptr<StorageEngine> engine;
  ASSERT_TRUE(OpenDiskEngine(dir.path(), opts, &engine).ok());
  store.AttachEngine(std::move(engine));
  store.SetCacheBudget(4 * 1024);

  // Many versions of few keys; stabilization trims all but the newest.
  for (int round = 0; round < 40; ++round) {
    for (int k = 0; k < 4; ++k) {
      const Key key = "hot-" + std::to_string(k);
      const uint64_t lam = static_cast<uint64_t>(round * 4 + k + 1);
      const Version v = V(lam, 0, {lam});
      store.Apply(key, std::string(1024, 'd'), v);
      store.MarkStable(key, v);
    }
  }
  EXPECT_EQ(store.total_versions(), 4u);
  const StorageEngineStats before = store.engine()->Stats();
  EXPECT_LT(before.live_bytes, before.log_bytes);  // GC'd versions are dead

  while (store.CompactEngine()) {
  }
  store.PurgeEngineGarbage();
  const StorageEngineStats after = store.engine()->Stats();
  EXPECT_GT(after.compactions, 0u);
  EXPECT_LT(after.log_bytes, before.log_bytes);
  // Live values survive compaction + purge.
  for (int k = 0; k < 4; ++k) {
    const StoredVersion* sv = store.Latest("hot-" + std::to_string(k));
    ASSERT_NE(sv, nullptr);
    EXPECT_EQ(sv->value, std::string(1024, 'd'));
  }
}

TEST(StoreWithDiskEngine, CheckpointAdoptRecoversWithoutRewritingValues) {
  ScratchDir dir("adopt");
  const std::string ckpt = dir.path() + "/checkpoint.crx";
  const std::string vlog = dir.path() + "/vlog";
  {
    VersionedStore store;
    store.AttachEngine(OpenDisk(vlog));
    for (int i = 0; i < 50; ++i) {
      const Key key = "key-" + std::to_string(i);
      const Version v = V(i + 1, 0, {static_cast<uint64_t>(i + 1)});
      store.Apply(key, "value-" + std::to_string(i), v);
      if (i % 2 == 0) {
        store.MarkStable(key, v);
      }
    }
    ASSERT_TRUE(SaveCheckpoint(store, ckpt, /*wal_seq=*/5).ok());
  }
  VersionedStore restored;
  restored.AttachEngine(OpenDisk(vlog));
  uint64_t wal_seq = 0;
  const uint64_t appends_before = restored.engine()->Stats().appends;
  ASSERT_TRUE(LoadCheckpoint(ckpt, &restored, &wal_seq).ok());
  EXPECT_EQ(wal_seq, 5u);
  EXPECT_EQ(restored.engine()->Stats().appends, appends_before);  // no rewrites
  EXPECT_EQ(restored.total_versions(), 50u);
  for (int i = 0; i < 50; ++i) {
    const Key key = "key-" + std::to_string(i);
    const StoredVersion* sv = restored.Latest(key);
    ASSERT_NE(sv, nullptr) << key;
    EXPECT_EQ(sv->value, "value-" + std::to_string(i));
    EXPECT_EQ(sv->stable, i % 2 == 0);
  }
}

TEST(StoreWithMemEngine, BehaviorUnchanged) {
  // The default engine is mem: no handles, everything resident.
  VersionedStore store;
  EXPECT_EQ(store.engine()->kind(), StorageEngineKind::kMem);
  store.Apply("k", "v1", V(1, 0, {1}));
  store.Apply("k", "v2", V(2, 0, {2}));
  EXPECT_EQ(store.Latest("k")->value, "v2");
  EXPECT_FALSE(store.Latest("k")->handle.valid());
  EXPECT_EQ(store.resident_versions(), 2u);
  EXPECT_EQ(store.resident_bytes(), 4u);
  store.MarkStable("k", V(2, 0, {2}));
  EXPECT_EQ(store.resident_bytes(), 2u);  // v1 trimmed
}

TEST(EngineKind, ParseAndName) {
  StorageEngineKind kind;
  EXPECT_TRUE(ParseStorageEngineKind("mem", &kind));
  EXPECT_EQ(kind, StorageEngineKind::kMem);
  EXPECT_TRUE(ParseStorageEngineKind("disk", &kind));
  EXPECT_EQ(kind, StorageEngineKind::kDisk);
  EXPECT_FALSE(ParseStorageEngineKind("flash", &kind));
  EXPECT_STREQ(StorageEngineKindName(StorageEngineKind::kDisk), "disk");
}

}  // namespace
}  // namespace chainreaction

// Unit tests for the discrete-event simulator and the simulated network:
// event ordering, cancellation, latency model, FIFO links, service-time
// queueing, crashes, and partitions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace chainreaction {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<Time> fired;
  sim.Schedule(10, [&] {
    fired.push_back(sim.Now());
    sim.Schedule(5, [&] { fired.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 10);
  EXPECT_EQ(fired[1], 15);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const uint64_t id = sim.Schedule(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelOneOfMany) {
  Simulator sim;
  int count = 0;
  sim.Schedule(10, [&] { count++; });
  const uint64_t id = sim.Schedule(10, [&] { count += 100; });
  sim.Schedule(10, [&] { count++; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  bool late_fired = false;
  sim.Schedule(1000, [&] { late_fired = true; });
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
  EXPECT_FALSE(late_fired);
  sim.RunUntil(1500);
  EXPECT_TRUE(late_fired);
  EXPECT_EQ(sim.Now(), 1500);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.Schedule(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

// A test actor that records everything it receives.
class RecordingActor : public Actor {
 public:
  void OnMessage(Address from, std::string_view payload) override {
    received.emplace_back(from, std::string(payload));
  }
  std::vector<std::pair<Address, std::string>> received;
};

NetworkConfig FastNet() {
  NetworkConfig cfg;
  cfg.intra_site = LinkModel{100, 0};
  return cfg;
}

TEST(SimNetwork, DeliversWithLatency) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 0);
  ea->Send(2, "hello");
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 1u);
  EXPECT_EQ(b.received[0].second, "hello");
  EXPECT_EQ(sim.Now(), 100);  // one-way latency, no jitter, no service time
}

TEST(SimNetwork, FifoPerLinkDespiteJitter) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.intra_site = LinkModel{100, 500};  // jitter far larger than spacing
  SimNetwork net(&sim, cfg, 7);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 0);
  for (int i = 0; i < 50; ++i) {
    ea->Send(2, std::to_string(i));
  }
  sim.Run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.received[i].second, std::to_string(i));
  }
}

TEST(SimNetwork, ServiceTimeSerializesProcessing) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a;
  std::vector<Time> times;
  class TimedActor : public Actor {
   public:
    explicit TimedActor(Simulator* sim, std::vector<Time>* times) : sim_(sim), times_(times) {}
    void OnMessage(Address, std::string_view) override { times_->push_back(sim_->Now()); }

   private:
    Simulator* sim_;
    std::vector<Time>* times_;
  } server(&sim, &times);

  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &server, 0, ServiceModel{50, 0.0, 0});
  // Three messages sent back to back arrive together (same latency) but
  // must be processed 50us apart.
  ea->Send(2, "x");
  ea->Send(2, "y");
  ea->Send(2, "z");
  sim.Run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[1] - times[0], 50);
  EXPECT_EQ(times[2] - times[1], 50);
}

TEST(SimNetwork, PerByteServiceCost) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 0, ServiceModel{0, 1.0, 0});  // 1us per byte
  ea->Send(2, std::string(64, 'q'));
  sim.Run();
  EXPECT_EQ(sim.Now(), 100 + 64);
}

TEST(SimNetwork, CrashDropsTraffic) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 0);
  net.Crash(2);
  ea->Send(2, "lost");
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);

  net.Restore(2);
  ea->Send(2, "arrives");
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
}

TEST(SimNetwork, CrashedNodeTimersDoNotFire) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a;
  Env* ea = net.Register(1, &a, 0);
  bool fired = false;
  ea->Schedule(100, [&] { fired = true; });
  net.Crash(1);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimNetwork, InterSiteLatencyMatrix) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.intra_site = LinkModel{100, 0};
  cfg.default_inter_site = LinkModel{5000, 0};
  SimNetwork net(&sim, cfg, 1);
  RecordingActor a, b, c;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 1);
  net.Register(3, &c, 2);
  net.SetInterSiteLatency(0, 2, LinkModel{9000, 0});

  ea->Send(2, "wan-default");
  sim.Run();
  EXPECT_EQ(sim.Now(), 5000);

  ea->Send(3, "wan-custom");
  sim.Run();
  EXPECT_EQ(sim.Now(), 5000 + 9000);
}

TEST(SimNetwork, SitePartitionBlocksAndHeals) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 1);
  net.PartitionSites(0, 1);
  ea->Send(2, "dropped");
  sim.Run();
  EXPECT_TRUE(b.received.empty());

  net.HealSites(0, 1);
  ea->Send(2, "delivered");
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
}

TEST(SimNetwork, DropProbabilityDropsRoughlyThatFraction) {
  Simulator sim;
  NetworkConfig cfg = FastNet();
  cfg.drop_probability = 0.3;
  SimNetwork net(&sim, cfg, 99);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 0);
  for (int i = 0; i < 2000; ++i) {
    ea->Send(2, "m");
  }
  sim.Run();
  EXPECT_NEAR(static_cast<double>(b.received.size()), 1400.0, 120.0);
}

TEST(SimNetwork, StatsCounters) {
  Simulator sim;
  SimNetwork net(&sim, FastNet(), 1);
  RecordingActor a, b;
  Env* ea = net.Register(1, &a, 0);
  net.Register(2, &b, 0);
  ea->Send(2, "12345");
  sim.Run();
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.bytes_sent(), 5u);
  EXPECT_EQ(net.MessagesProcessedBy(2), 1u);
  EXPECT_EQ(net.MessagesProcessedBy(1), 0u);
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    NetworkConfig cfg;
    cfg.intra_site = LinkModel{100, 80};
    SimNetwork net(&sim, cfg, seed);
    RecordingActor a, b;
    Env* ea = net.Register(1, &a, 0);
    net.Register(2, &b, 0);
    for (int i = 0; i < 20; ++i) {
      ea->Send(2, std::to_string(i));
    }
    sim.Run();
    return sim.Now();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace chainreaction

// Observability unit tests: histogram edge cases (the metrics layer leans on
// Merge/Percentile), registry instrument identity + concurrency, snapshot
// queries and renderings, trace header wire format, and collector merging.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace chainreaction {
namespace {

// Histogram edge cases -------------------------------------------------------

TEST(HistogramEdge, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(100), 0);
  EXPECT_NE(h.Summary().find("count=0"), std::string::npos);
}

TEST(HistogramEdge, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.Percentile(0), 42);
  EXPECT_EQ(h.P50(), 42);
  EXPECT_EQ(h.P99(), 42);
  EXPECT_EQ(h.Percentile(100), 42);
}

TEST(HistogramEdge, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.P50(), 0);
}

TEST(HistogramEdge, OverflowBucketStillBoundedByMax) {
  Histogram h;
  const int64_t huge = std::numeric_limits<int64_t>::max();
  h.Record(huge);
  h.Record(huge - 1);
  // Percentiles are capped at the observed max even when samples land in the
  // last (overflow) bucket, whose nominal upper bound wraps past int64 range.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), huge);
  EXPECT_EQ(h.Percentile(100), huge);
  EXPECT_GE(h.P50(), huge - 1);
}

TEST(HistogramEdge, PercentileWithinRelativeErrorBound) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  // Log-bucketing guarantees relative error <= 1/32.
  EXPECT_NEAR(static_cast<double>(h.P50()), 500.0, 500.0 / 32.0 + 1.0);
  EXPECT_NEAR(static_cast<double>(h.P95()), 950.0, 950.0 / 32.0 + 1.0);
  EXPECT_NEAR(static_cast<double>(h.P99()), 990.0, 990.0 / 32.0 + 1.0);
}

TEST(HistogramEdge, MergeCombinesCountsAndExtremes) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(1000);

  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.Mean(), (10 + 20 + 5 + 1000) / 4.0);
}

TEST(HistogramEdge, MergeWithEmptyIsIdentityBothWays) {
  Histogram a, empty;
  a.Record(7);

  Histogram merged = a;
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), 1u);
  EXPECT_EQ(merged.min(), 7);
  EXPECT_EQ(merged.max(), 7);

  Histogram from_empty;
  from_empty.Merge(a);
  EXPECT_EQ(from_empty.count(), 1u);
  EXPECT_EQ(from_empty.min(), 7);
  EXPECT_EQ(from_empty.max(), 7);
  EXPECT_EQ(from_empty.P50(), 7);
}

TEST(HistogramEdge, ResetClearsEverything) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.P99(), 0);
}

// Metrics registry ------------------------------------------------------------

TEST(MetricsRegistry, SameNameAndLabelsReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops", {{"node", "1"}});
  Counter* b = reg.GetCounter("ops", {{"node", "1"}});
  Counter* c = reg.GetCounter("ops", {{"node", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  a->Inc(3);
  c->Inc();
  EXPECT_EQ(reg.Snapshot().Value("ops", "node=1"), 3);
  EXPECT_EQ(reg.Snapshot().Value("ops", "node=2"), 1);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(reg.Snapshot().Value("depth"), 7);
}

TEST(MetricsRegistry, SnapshotSortedAndQueryable) {
  MetricsRegistry reg;
  reg.GetCounter("b_metric")->Inc(2);
  reg.GetCounter("a_metric", {{"x", "1"}})->Inc(1);
  reg.GetLatency("lat")->Record(100);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.points.size(), 3u);
  EXPECT_EQ(snap.points[0].name, "a_metric");
  EXPECT_EQ(snap.points[1].name, "b_metric");
  EXPECT_EQ(snap.points[2].name, "lat");

  const MetricPoint* p = snap.Find("a_metric", "x=1");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value, 1);
  EXPECT_EQ(snap.Find("a_metric", "x=2"), nullptr);
  EXPECT_EQ(snap.Value("missing"), 0);

  const MetricPoint* lat = snap.Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->kind, MetricKind::kHistogram);
  EXPECT_EQ(lat->hist.count(), 1u);
}

TEST(MetricsRegistry, SumCountersFiltersBySubstring) {
  MetricsRegistry reg;
  reg.GetCounter("reads", {{"node", "1"}, {"position", "1"}})->Inc(4);
  reg.GetCounter("reads", {{"node", "1"}, {"position", "2"}})->Inc(6);
  reg.GetCounter("reads", {{"node", "2"}, {"position", "1"}})->Inc(5);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.SumCounters("reads"), 15);
  EXPECT_EQ(snap.SumCounters("reads", "node=1,"), 10);
  EXPECT_EQ(snap.SumCounters("reads", "position=1"), 9);
  EXPECT_EQ(snap.SumCounters("other"), 0);
}

TEST(MetricsRegistry, RenderTextAndJsonContainInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("crx_test_counter", {{"dc", "0"}})->Inc(9);
  reg.GetLatency("crx_test_lat")->Record(50);

  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("crx_test_counter{dc=0} 9"), std::string::npos) << text;
  EXPECT_NE(text.find("crx_test_lat"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);

  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"crx_test_counter\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"crx_test_lat\""), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentUpdatesAndSnapshots) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t]() {
      // Every thread re-resolves its instruments, racing registry creation
      // with the snapshotter below — the hot-path contract of AttachObs.
      Counter* shared = reg.GetCounter("shared_ops");
      Counter* own = reg.GetCounter("per_thread_ops", {{"t", std::to_string(t)}});
      LatencyMetric* lat = reg.GetLatency("op_lat");
      for (int i = 0; i < kIncrements; ++i) {
        shared->Inc();
        own->Inc();
        lat->Record(i % 512);
      }
    });
  }
  threads.emplace_back([&reg]() {
    for (int i = 0; i < 50; ++i) {
      const MetricsSnapshot snap = reg.Snapshot();
      (void)snap.RenderText();
    }
  });
  for (std::thread& t : threads) {
    t.join();
  }

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("shared_ops"), kThreads * kIncrements);
  EXPECT_EQ(snap.SumCounters("per_thread_ops"), kThreads * kIncrements);
  const MetricPoint* lat = snap.Find("op_lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count(), static_cast<uint64_t>(kThreads) * kIncrements);
}

// Trace wire format -----------------------------------------------------------

TEST(TraceWire, UntracedContextCostsOneByte) {
  TraceContext t;
  ByteWriter w;
  t.Encode(&w);
  EXPECT_EQ(w.size(), 1u);  // varint 0

  ByteReader r(w.data());
  TraceContext back;
  back.hops.push_back(TraceHop{HopKind::kClientPut, 1, 0, 0, 5});  // must be cleared
  ASSERT_TRUE(back.Decode(&r));
  EXPECT_FALSE(back.active());
  EXPECT_TRUE(back.hops.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(TraceWire, RoundTripPreservesHops) {
  TraceContext t;
  t.id = MakeTraceId(kClientAddressBase + 3, 77);
  t.Annotate(HopKind::kClientPut, kClientAddressBase + 3, 0, 2, 1000);
  t.Annotate(HopKind::kHeadApply, 4, 0, 1, 1500);
  t.Annotate(HopKind::kKAck, 5, 1, 2, 2000);

  ByteWriter w;
  t.Encode(&w);
  ByteReader r(w.data());
  TraceContext back;
  ASSERT_TRUE(back.Decode(&r));
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(back.id, t.id);
  ASSERT_EQ(back.hops.size(), 3u);
  for (size_t i = 0; i < t.hops.size(); ++i) {
    EXPECT_TRUE(back.hops[i] == t.hops[i]) << "hop " << i;
  }
}

TEST(TraceWire, DecodeRejectsTruncatedInput) {
  TraceContext t;
  t.id = 9;
  t.Annotate(HopKind::kHeadApply, 1, 0, 1, 100);
  ByteWriter w;
  t.Encode(&w);

  const std::string& full = w.data();
  for (size_t cut = 1; cut + 1 < full.size(); ++cut) {
    ByteReader r(full.data(), cut);
    TraceContext back;
    EXPECT_FALSE(back.Decode(&r)) << "accepted a " << cut << "-byte prefix";
  }
}

// Trace collector -------------------------------------------------------------

TEST(TraceCollector, UnionMergesPartialReportsAndDedups) {
  TraceCollector col;

  TraceContext a;
  a.id = 1;
  a.Annotate(HopKind::kClientPut, 100, 0, 0, 10);
  col.Report(a);

  // A downstream component reports the same prefix plus a new hop — the
  // prefix must collapse, the new hop must be added.
  a.Annotate(HopKind::kHeadApply, 3, 0, 1, 20);
  col.Report(a);
  col.Report(a);  // exact re-report is idempotent

  TraceCollector::Trace merged;
  ASSERT_TRUE(col.Find(1, &merged));
  ASSERT_EQ(merged.hops.size(), 2u);
  EXPECT_EQ(merged.hops[0].kind, HopKind::kClientPut);
  EXPECT_EQ(merged.hops[1].kind, HopKind::kHeadApply);
}

TEST(TraceCollector, HopsSortedByTimestampAcrossReports) {
  TraceCollector col;

  // Reports arrive out of order (an ack path reports before a slow geo path).
  TraceContext late;
  late.id = 2;
  late.Annotate(HopKind::kTailStable, 6, 0, 3, 300);
  col.Report(late);

  TraceContext early;
  early.id = 2;
  early.Annotate(HopKind::kClientPut, 100, 0, 0, 50);
  early.Annotate(HopKind::kHeadApply, 4, 0, 1, 120);
  col.Report(early);

  TraceCollector::Trace merged;
  ASSERT_TRUE(col.Find(2, &merged));
  ASSERT_EQ(merged.hops.size(), 3u);
  for (size_t i = 1; i < merged.hops.size(); ++i) {
    EXPECT_LE(merged.hops[i - 1].at, merged.hops[i].at);
  }
  EXPECT_EQ(merged.hops[0].kind, HopKind::kClientPut);
  EXPECT_EQ(merged.hops[2].kind, HopKind::kTailStable);
}

TEST(TraceCollector, LatestAndClear) {
  TraceCollector col;
  EXPECT_EQ(col.size(), 0u);
  TraceCollector::Trace out;
  EXPECT_FALSE(col.Latest(&out));

  TraceContext first;
  first.id = 10;
  first.Annotate(HopKind::kClientPut, 1, 0, 0, 1);
  col.Report(first);
  TraceContext second;
  second.id = 11;
  second.Annotate(HopKind::kClientPut, 1, 0, 0, 2);
  col.Report(second);

  EXPECT_EQ(col.size(), 2u);
  ASSERT_TRUE(col.Latest(&out));
  EXPECT_EQ(out.id, 11u);
  // A re-report of an existing trace must not change which one is latest.
  col.Report(first);
  ASSERT_TRUE(col.Latest(&out));
  EXPECT_EQ(out.id, 11u);

  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  EXPECT_FALSE(col.Find(10, &out));
}

TEST(TraceCollector, RenderNamesEveryHop) {
  TraceCollector col;
  TraceContext t;
  t.id = 5;
  t.Annotate(HopKind::kClientPut, 100, 0, 0, 10);
  t.Annotate(HopKind::kHeadApply, 3, 0, 1, 25);
  t.Annotate(HopKind::kKAck, 4, 0, 2, 40);
  col.Report(t);

  TraceCollector::Trace merged;
  ASSERT_TRUE(col.Find(5, &merged));
  const std::string text = TraceCollector::Render(merged);
  EXPECT_NE(text.find(HopKindName(HopKind::kClientPut)), std::string::npos) << text;
  EXPECT_NE(text.find(HopKindName(HopKind::kHeadApply)), std::string::npos);
  EXPECT_NE(text.find(HopKindName(HopKind::kKAck)), std::string::npos);
}

TEST(TraceHopHelper, NoOpWithoutActiveTraceOrSink) {
  TraceContext inactive;
  TraceCollector col;
  TraceHopAndReport(&inactive, &col, HopKind::kClientPut, 1, 0, 0, 10);
  EXPECT_TRUE(inactive.hops.empty());
  EXPECT_EQ(col.size(), 0u);

  TraceContext active;
  active.id = 1;
  TraceHopAndReport(&active, nullptr, HopKind::kClientPut, 1, 0, 0, 10);
  ASSERT_EQ(active.hops.size(), 1u);  // annotates even with no collector
  TraceHopAndReport(nullptr, &col, HopKind::kClientPut, 1, 0, 0, 10);
  EXPECT_EQ(col.size(), 0u);
}

}  // namespace
}  // namespace chainreaction

// Elastic membership: planned join/drain/rebalance through the migration
// coordinator (src/admin/). Data streams to the planned layout BEFORE the
// epoch flips; acked writes stay readable and causally consistent across the
// cutover. All clusters here run heartbeat timers — drive with RunUntil.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "src/ycsb/driver.h"

namespace chainreaction {
namespace {

ClusterOptions ElasticOpts(uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 3;
  opts.heartbeat_interval = 50 * kMillisecond;
  opts.seed = seed;
  return opts;
}

void ExpectAllReadable(Cluster* cluster, int records) {
  ChainReactionClient* reader = cluster->crx_client(0);
  for (int i = 0; i < records; ++i) {
    bool found = false;
    reader->Get(RecordKey(i),
                [&](const ChainReactionClient::GetResult& r) { found = r.found; });
    cluster->sim()->RunUntil(cluster->sim()->Now() + 50 * kMillisecond);
    EXPECT_TRUE(found) << "key " << RecordKey(i);
  }
}

TEST(Migration, JoinStreamsDataAndFlipsEpoch) {
  Cluster cluster(ElasticOpts());
  cluster.Preload(200, 64);
  const uint64_t epoch_before = cluster.membership(0)->epoch();

  uint32_t idx = 0;
  const uint64_t id = cluster.AddJoiningServer(0, &idx);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(idx, 8u);
  ASSERT_TRUE(cluster.WaitMigrationIdle(0));

  EXPECT_EQ(cluster.coordinator(0)->completed(), 1u);
  EXPECT_EQ(cluster.coordinator(0)->aborted(), 0u);
  EXPECT_EQ(cluster.membership(0)->epoch(), epoch_before + 1);
  const NodeId newcomer = cluster.ServerAddress(0, idx);
  EXPECT_TRUE(cluster.membership(0)->ring().Contains(newcomer));
  // The newcomer owns ring arcs now, and migration (not chain repair) moved
  // the data in: it streamed entries before the flip.
  EXPECT_GT(cluster.crx_node(0, idx)->store().KeyCount(), 0u);
  EXPECT_GT(cluster.crx_node(0, idx)->mig_entries_in(), 0u);
  EXPECT_FALSE(cluster.crx_node(0, idx)->migration_source_active());

  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  ExpectAllReadable(&cluster, 200);

  // Migration state is exported as labeled Prometheus gauges. The source
  // backlog has drained to zero now that the join committed; the newcomer's
  // inflow sessions stay tracked (gauge > 0) until the straggler window a
  // further epoch away closes, so only existence is asserted there.
  const MetricsSnapshot snap = cluster.metrics()->Snapshot();
  const std::string prom = snap.RenderPrometheus();
  EXPECT_NE(prom.find("crx_mig_inflow_sessions{"), std::string::npos);
  EXPECT_NE(prom.find("crx_mig_keys_pending{"), std::string::npos);
  size_t mig_gauges = 0;
  for (const MetricPoint& p : snap.points) {
    if (p.name == "crx_mig_keys_pending") {
      EXPECT_EQ(p.kind, MetricKind::kGauge);
      EXPECT_EQ(p.value, 0) << p.name << "{" << p.labels << "}";
      ++mig_gauges;
    } else if (p.name == "crx_mig_inflow_sessions") {
      EXPECT_EQ(p.kind, MetricKind::kGauge);
      ++mig_gauges;
    }
  }
  EXPECT_GT(mig_gauges, 0u);
}

TEST(Migration, JoinUnderLoadStaysCausal) {
  Cluster cluster(ElasticOpts(11));
  cluster.Preload(100, 64);

  StatsCollector stats;
  uint64_t insert_counter = 100;
  CausalChecker checker;
  std::vector<std::unique_ptr<WorkloadDriver>> drivers;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    auto driver = std::make_unique<WorkloadDriver>(cluster.client(i), cluster.client_env(i),
                                                   WorkloadSpec::A(100, 64), 700 + i,
                                                   &insert_counter, &stats);
    const uint32_t session = cluster.client(i)->address();
    driver->on_write_complete = [&checker, session](const Key& key, const KvPutResult& r) {
      checker.RecordWrite(session, key, r.version, r.deps);
    };
    driver->on_read_complete = [&checker, session](const Key& key, const KvGetResult& r) {
      checker.RecordRead(session, key, r.found, r.version);
    };
    driver->Start();
    drivers.push_back(std::move(driver));
  }

  cluster.sim()->RunUntil(cluster.sim()->Now() + 300 * kMillisecond);
  uint32_t idx = 0;
  ASSERT_NE(cluster.AddJoiningServer(0, &idx), 0u);
  ASSERT_TRUE(cluster.WaitMigrationIdle(0));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  for (auto& d : drivers) {
    d->Stop();
  }
  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);

  EXPECT_EQ(cluster.coordinator(0)->completed(), 1u);
  EXPECT_GT(stats.TotalOps(), 200u);
  EXPECT_EQ(checker.violations(), 0u)
      << (checker.diagnostics().empty() ? "" : checker.diagnostics()[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
}

TEST(Migration, DrainUnderLoadStaysCausal) {
  Cluster cluster(ElasticOpts(13));
  cluster.Preload(100, 64);

  StatsCollector stats;
  uint64_t insert_counter = 100;
  CausalChecker checker;
  std::vector<std::unique_ptr<WorkloadDriver>> drivers;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    auto driver = std::make_unique<WorkloadDriver>(cluster.client(i), cluster.client_env(i),
                                                   WorkloadSpec::A(100, 64), 300 + i,
                                                   &insert_counter, &stats);
    const uint32_t session = cluster.client(i)->address();
    driver->on_write_complete = [&checker, session](const Key& key, const KvPutResult& r) {
      checker.RecordWrite(session, key, r.version, r.deps);
    };
    driver->on_read_complete = [&checker, session](const Key& key, const KvGetResult& r) {
      checker.RecordRead(session, key, r.found, r.version);
    };
    driver->Start();
    drivers.push_back(std::move(driver));
  }

  cluster.sim()->RunUntil(cluster.sim()->Now() + 300 * kMillisecond);
  const NodeId victim = cluster.ServerAddress(0, 3);
  ASSERT_NE(cluster.DrainServer(0, 3), 0u);
  ASSERT_TRUE(cluster.WaitMigrationIdle(0));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  for (auto& d : drivers) {
    d->Stop();
  }
  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);

  EXPECT_EQ(cluster.coordinator(0)->completed(), 1u);
  EXPECT_FALSE(cluster.membership(0)->ring().Contains(victim));
  // The drained process is still up — it just owns nothing.
  EXPECT_FALSE(cluster.crx_node(0, 3)->migration_source_active());
  EXPECT_EQ(checker.violations(), 0u)
      << (checker.diagnostics().empty() ? "" : checker.diagnostics()[0]);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  ExpectAllReadable(&cluster, 100);
}

TEST(Migration, RebalanceShiftsWeight) {
  ClusterOptions opts = ElasticOpts(17);
  Cluster cluster(opts);
  cluster.Preload(200, 64);

  const NodeId heavy = cluster.ServerAddress(0, 1);
  ASSERT_NE(cluster.RebalanceServer(0, 1, 4 * opts.vnodes), 0u);
  ASSERT_TRUE(cluster.WaitMigrationIdle(0));

  EXPECT_EQ(cluster.coordinator(0)->completed(), 1u);
  EXPECT_EQ(cluster.membership(0)->ring().WeightOf(heavy), 4 * opts.vnodes);

  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  ExpectAllReadable(&cluster, 200);
}

TEST(Migration, BackToBackPlannedEpochs) {
  // A join queued on top of a drain: the second plan launches the moment
  // the first commits, against the first's committed topology.
  Cluster cluster(ElasticOpts(19));
  cluster.Preload(100, 64);
  const uint64_t epoch_before = cluster.membership(0)->epoch();

  uint32_t idx = 0;
  ASSERT_NE(cluster.AddJoiningServer(0, &idx), 0u);
  ASSERT_NE(cluster.DrainServer(0, 2), 0u);  // queues behind the join
  ASSERT_TRUE(cluster.WaitMigrationIdle(0));

  EXPECT_EQ(cluster.coordinator(0)->completed(), 2u);
  EXPECT_EQ(cluster.coordinator(0)->aborted(), 0u);
  EXPECT_EQ(cluster.membership(0)->epoch(), epoch_before + 2);
  EXPECT_TRUE(cluster.membership(0)->ring().Contains(cluster.ServerAddress(0, idx)));
  EXPECT_FALSE(cluster.membership(0)->ring().Contains(cluster.ServerAddress(0, 2)));

  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  ExpectAllReadable(&cluster, 100);
}

TEST(Migration, CrashDuringMigrationAbortsCleanlyAndRetrySucceeds) {
  // A node crashes silently right as a join launches: its snapshot never
  // reports, failure detection flips an unplanned epoch mid-flight, and the
  // coordinator must fold the migration cleanly. A re-issued join against
  // the post-crash ring then succeeds.
  Cluster cluster(ElasticOpts(23));
  cluster.Preload(100, 64);

  cluster.net()->Crash(cluster.ServerAddress(0, 5));  // silent — FD must notice
  uint32_t idx = 0;
  const uint64_t id = cluster.AddJoiningServer(0, &idx);
  ASSERT_NE(id, 0u);
  ASSERT_TRUE(cluster.WaitMigrationIdle(0, 5 * kSecond));

  EXPECT_EQ(cluster.coordinator(0)->aborted(), 1u);
  EXPECT_EQ(cluster.coordinator(0)->completed(), 0u);
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 1u);
  const NodeId newcomer = cluster.ServerAddress(0, idx);
  EXPECT_FALSE(cluster.membership(0)->ring().Contains(newcomer));
  // No node is left holding migration-source state.
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(cluster.crx_node(0, i)->migration_source_active()) << "node " << i;
  }

  // Retry: the coordinator observed the crash epoch, so the new plan builds
  // on the 7-node ring.
  ASSERT_NE(cluster.coordinator(0)->StartJoin(newcomer), 0u);
  ASSERT_TRUE(cluster.WaitMigrationIdle(0));
  EXPECT_EQ(cluster.coordinator(0)->completed(), 1u);
  EXPECT_TRUE(cluster.membership(0)->ring().Contains(newcomer));

  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  std::string diag;
  EXPECT_TRUE(cluster.CheckConvergence(&diag)) << diag;
  ExpectAllReadable(&cluster, 100);
}

class SnapshotDoneRecorder : public Actor {
 public:
  void OnMessage(Address, std::string_view payload) override {
    MigSnapshotDone m;
    if (PeekType(payload) == MsgType::kMigSnapshotDone && DecodeMessage(payload, &m)) {
      dones.push_back(m);
    }
  }
  std::vector<MigSnapshotDone> dones;
};

TEST(Migration, StaleEpochSnapshotRequestRefused) {
  Cluster cluster(ElasticOpts(29));
  cluster.Preload(50, 32);

  SnapshotDoneRecorder recorder;
  const Address recorder_addr = kClientAddressBase + 700;
  cluster.net()->Register(recorder_addr, &recorder, 0);

  // A request planned against an epoch this ring never saw: the node must
  // refuse (reply aborted) rather than stream against the wrong layout.
  MigSnapshotRequest req;
  req.migration_id = 4242;
  req.epoch = cluster.membership(0)->epoch() + 5;
  req.planned_epoch = req.epoch + 1;
  req.planned_nodes = cluster.membership(0)->nodes();
  req.planned_weights = cluster.membership(0)->Weights();
  req.coordinator = recorder_addr;
  ChainReactionNode* node = cluster.crx_node(0, 0);
  node->OnMessage(recorder_addr, EncodeMessage(req));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 100 * kMillisecond);

  ASSERT_EQ(recorder.dones.size(), 1u);
  EXPECT_TRUE(recorder.dones[0].aborted);
  EXPECT_EQ(recorder.dones[0].migration_id, 4242u);
  EXPECT_FALSE(node->migration_source_active());
  EXPECT_EQ(node->mig_entries_out(), 0u);
}

TEST(Migration, StaleEpochKeyBatchDropped) {
  Cluster cluster(ElasticOpts(31));
  cluster.Preload(50, 32);
  ChainReactionNode* node = cluster.crx_node(0, 1);
  const size_t keys_before = node->store().KeyCount();

  // A batch from a dead epoch with no established session: dropped whole.
  MigKeyBatch batch;
  batch.migration_id = 999;
  batch.epoch = 0;  // ring epoch is >= 1
  batch.source = cluster.ServerAddress(0, 0);
  batch.target = node->id();
  batch.coordinator = kClientAddressBase + 701;
  batch.seq = 1;
  batch.last = true;
  MigEntry entry;
  entry.key = "mig-stale-key";
  entry.value = "SHOULD-NOT-APPLY";
  entry.version.vv = VersionVector(1);
  entry.version.vv.Set(0, 77);
  entry.version.lamport = 77;
  batch.entries.push_back(entry);
  node->OnMessage(batch.source, EncodeMessage(batch));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 100 * kMillisecond);

  EXPECT_EQ(node->mig_entries_in(), 0u);
  EXPECT_EQ(node->store().KeyCount(), keys_before);
  EXPECT_EQ(node->store().Latest("mig-stale-key"), nullptr);
}

}  // namespace
}  // namespace chainreaction

// End-to-end tracing on the simulated cluster: a traced put must reconstruct
// the full pipeline — client -> head -> down-chain -> k-ack -> client ack,
// tail DC-Write-Stable -> geo ship -> remote inject -> remote visibility —
// with hops matching the ring's chain for the key and timestamps that never
// go backwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {
namespace {

ClusterOptions TracingOpts(uint16_t dcs) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 2;
  opts.num_dcs = dcs;
  opts.trace_sample_every = 1;
  opts.seed = 11;
  return opts;
}

const TraceHop* FindHop(const TraceCollector::Trace& trace, HopKind kind) {
  for (const TraceHop& hop : trace.hops) {
    if (hop.kind == kind) {
      return &hop;
    }
  }
  return nullptr;
}

void ExpectMonotoneTimestamps(const TraceCollector::Trace& trace) {
  for (size_t i = 1; i < trace.hops.size(); ++i) {
    EXPECT_LE(trace.hops[i - 1].at, trace.hops[i].at)
        << "hop " << i << " (" << HopKindName(trace.hops[i].kind)
        << ") is earlier than its predecessor";
  }
}

TEST(Tracing, PutHopSequenceMatchesChainTopology) {
  Cluster cluster(TracingOpts(1));
  const Key key = "traced-key";
  const std::vector<NodeId>& chain = cluster.membership(0)->ring().ChainFor(key);
  const uint32_t replication = cluster.options().replication;
  const uint32_t k = cluster.options().k_stability;
  ASSERT_EQ(chain.size(), replication);

  bool acked = false;
  cluster.crx_client(0)->Put(key, "v", [&](const auto&) { acked = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(acked);

  TraceCollector::Trace trace;
  ASSERT_TRUE(cluster.traces()->Latest(&trace));
  ExpectMonotoneTimestamps(trace);

  ASSERT_FALSE(trace.hops.empty());
  EXPECT_EQ(trace.hops.front().kind, HopKind::kClientPut);

  // The head applied first, at position 1, on the ring's head for this key.
  const TraceHop* head = FindHop(trace, HopKind::kHeadApply);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->node, chain[0]);
  EXPECT_EQ(head->detail, 1u);

  // Every non-head replica applied, each at its chain position on the node
  // the ring assigns to that position.
  std::set<uint32_t> positions_applied;
  for (const TraceHop& hop : trace.hops) {
    if (hop.kind == HopKind::kChainApply) {
      ASSERT_GE(hop.detail, 2u);
      ASSERT_LE(hop.detail, replication);
      EXPECT_EQ(hop.node, chain[hop.detail - 1])
          << "position " << hop.detail << " applied on the wrong node";
      positions_applied.insert(hop.detail);
    }
  }
  EXPECT_EQ(positions_applied.size(), replication - 1);

  // The k-stability ack came from position k, and the client saw it after.
  const TraceHop* kack = FindHop(trace, HopKind::kKAck);
  ASSERT_NE(kack, nullptr);
  EXPECT_EQ(kack->detail, k);
  EXPECT_EQ(kack->node, chain[k - 1]);
  const TraceHop* client_ack = FindHop(trace, HopKind::kClientAck);
  ASSERT_NE(client_ack, nullptr);
  EXPECT_GE(client_ack->at, kack->at);

  // The tail declared DC-Write-Stable strictly after the head applied.
  const TraceHop* stable = FindHop(trace, HopKind::kTailStable);
  ASSERT_NE(stable, nullptr);
  EXPECT_EQ(stable->node, chain[replication - 1]);
  EXPECT_GE(stable->at, head->at);
}

TEST(Tracing, GeoReplicatedPutTracedToRemoteVisibility) {
  ClusterOptions opts = TracingOpts(2);
  opts.net.default_inter_site = LinkModel{80 * kMillisecond, 0};
  Cluster cluster(opts);
  const Key key = "geo-traced";

  bool acked = false;
  cluster.crx_client(0)->Put(key, "v", [&](const auto&) { acked = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(acked);

  TraceCollector::Trace trace;
  ASSERT_TRUE(cluster.traces()->Latest(&trace));
  ExpectMonotoneTimestamps(trace);

  const TraceHop* stable = FindHop(trace, HopKind::kTailStable);
  const TraceHop* ship = FindHop(trace, HopKind::kGeoShip);
  const TraceHop* inject = FindHop(trace, HopKind::kGeoInject);
  const TraceHop* visible = FindHop(trace, HopKind::kRemoteVisible);
  ASSERT_NE(stable, nullptr);
  ASSERT_NE(ship, nullptr) << TraceCollector::Render(trace);
  ASSERT_NE(inject, nullptr);
  ASSERT_NE(visible, nullptr);

  // Origin replicator shipped to one peer after the tail stabilized; the
  // remote replicator injected and eventually reported visibility, one WAN
  // crossing later, all in DC 1.
  EXPECT_EQ(ship->dc, 0);
  EXPECT_EQ(ship->detail, 1u);  // one peer DC
  EXPECT_GE(ship->at, stable->at);
  EXPECT_EQ(inject->dc, 1);
  EXPECT_EQ(inject->detail, 0u);  // origin DC
  EXPECT_GE(inject->at, ship->at + 70 * kMillisecond);
  EXPECT_EQ(visible->dc, 1);
  EXPECT_GE(visible->at, inject->at);

  // The remote chain re-applied the update: chain-apply hops exist in DC 1
  // on the remote ring's chain for the key.
  const std::vector<NodeId>& remote_chain = cluster.membership(1)->ring().ChainFor(key);
  bool remote_applied = false;
  for (const TraceHop& hop : trace.hops) {
    if ((hop.kind == HopKind::kHeadApply || hop.kind == HopKind::kChainApply) && hop.dc == 1) {
      remote_applied = true;
      EXPECT_EQ(hop.node, remote_chain[hop.detail - 1]);
    }
  }
  EXPECT_TRUE(remote_applied) << TraceCollector::Render(trace);
}

TEST(Tracing, SamplingTracesEveryNthPut) {
  ClusterOptions opts = TracingOpts(1);
  opts.trace_sample_every = 2;
  Cluster cluster(opts);

  for (int i = 0; i < 4; ++i) {
    bool acked = false;
    cluster.crx_client(0)->Put("s-" + std::to_string(i), "v", [&](const auto&) { acked = true; });
    cluster.sim()->Run();
    ASSERT_TRUE(acked);
  }
  // Puts 0 and 2 traced, 1 and 3 not.
  EXPECT_EQ(cluster.traces()->size(), 2u);
}

TEST(Tracing, DisabledByDefault) {
  ClusterOptions opts = TracingOpts(1);
  opts.trace_sample_every = 0;
  Cluster cluster(opts);

  bool acked = false;
  cluster.crx_client(0)->Put("untraced", "v", [&](const auto&) { acked = true; });
  cluster.sim()->Run();
  ASSERT_TRUE(acked);
  EXPECT_EQ(cluster.traces()->size(), 0u);
}

TEST(Tracing, WorkloadTracesStayConsistentWithMetrics) {
  ClusterOptions opts = TracingOpts(1);
  opts.clients_per_dc = 4;
  opts.trace_sample_every = 10;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(200, 64);
  run.warmup = 100 * kMillisecond;
  run.measure = 1 * kSecond;
  (void)RunWorkload(&cluster, run);

  ASSERT_GT(cluster.traces()->size(), 0u);
  // Every collected trace individually keeps time order, and the metrics
  // registry saw at least as many applied puts as traces (each traced put
  // applies at every chain position).
  for (uint64_t id : cluster.traces()->TraceIds()) {
    TraceCollector::Trace trace;
    ASSERT_TRUE(cluster.traces()->Find(id, &trace));
    ExpectMonotoneTimestamps(trace);
    EXPECT_FALSE(trace.hops.empty());
    EXPECT_EQ(trace.hops.front().kind, HopKind::kClientPut);
  }
  const MetricsSnapshot snap = cluster.metrics()->Snapshot();
  EXPECT_GE(snap.SumCounters("crx_node_puts_applied"),
            static_cast<int64_t>(cluster.traces()->size()));
}

}  // namespace
}  // namespace chainreaction

// Unit tests for src/common: serialization, rng, hashing, histograms,
// status/result, versions and version vectors.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/version.h"

namespace chainreaction {
namespace {

// ---------------------------------------------------------------- bytes ----

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);
  w.PutString("hello");
  w.PutVarU64(0);
  w.PutVarU64(127);
  w.PutVarU64(128);
  w.PutVarU64(UINT64_MAX);

  ByteReader r(w.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  bool b1, b2;
  std::string s;
  uint64_t v0, v127, v128, vmax;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetI64(&i64));
  ASSERT_TRUE(r.GetBool(&b1));
  ASSERT_TRUE(r.GetBool(&b2));
  ASSERT_TRUE(r.GetString(&s));
  ASSERT_TRUE(r.GetVarU64(&v0));
  ASSERT_TRUE(r.GetVarU64(&v127));
  ASSERT_TRUE(r.GetVarU64(&v128));
  ASSERT_TRUE(r.GetVarU64(&vmax));
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v0, 0u);
  EXPECT_EQ(v127, 127u);
  EXPECT_EQ(v128, 128u);
  EXPECT_EQ(vmax, UINT64_MAX);
}

TEST(Bytes, EmptyString) {
  ByteWriter w;
  w.PutString("");
  ByteReader r(w.data());
  std::string s = "dirty";
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, TruncatedReadsFailCleanly) {
  ByteWriter w;
  w.PutU64(12345);
  for (size_t cut = 0; cut < 8; ++cut) {
    ByteReader r(w.data().data(), cut);
    uint64_t v;
    EXPECT_FALSE(r.GetU64(&v)) << "cut=" << cut;
  }
}

TEST(Bytes, StringLengthBeyondBufferFails) {
  ByteWriter w;
  w.PutU32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.GetString(&s));
}

TEST(Bytes, BinarySafeStrings) {
  std::string blob;
  for (int i = 0; i < 256; ++i) {
    blob.push_back(static_cast<char>(i));
  }
  ByteWriter w;
  w.PutString(blob);
  ByteReader r(w.data());
  std::string out;
  ASSERT_TRUE(r.GetString(&out));
  EXPECT_EQ(out, blob);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformityRoughly) {
  Rng rng(11);
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    buckets[rng.NextBelow(10)]++;
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(50.0);
  }
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ForkIndependence) {
  Rng a(5);
  Rng fork = a.Fork();
  // Forked stream differs from parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == fork.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

// ----------------------------------------------------------------- hash ----

TEST(Hash, Fnv1aKnownValues) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("chainreaction"), Fnv1a64("chainreaction"));
}

TEST(Hash, Mix64Bijective) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

// ------------------------------------------------------------ histogram ----

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  EXPECT_NEAR(static_cast<double>(h.P50()), 50, 4);
  EXPECT_NEAR(static_cast<double>(h.P99()), 99, 5);
}

TEST(Histogram, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(777);
  EXPECT_EQ(h.P50(), h.Percentile(100));
  EXPECT_LE(h.P50(), 777);
  EXPECT_GE(static_cast<double>(h.P50()), 777 * 0.96);  // bounded relative error
}

TEST(Histogram, RelativeErrorBounded) {
  Histogram h;
  const int64_t values[] = {3, 17, 129, 1023, 65537, 1 << 20, int64_t{1} << 33};
  for (int64_t v : values) {
    Histogram single;
    single.Record(v);
    const int64_t p = single.Percentile(50);
    EXPECT_LE(p, v);
    EXPECT_GE(static_cast<double>(p), static_cast<double>(v) * (1.0 - 1.0 / 32.0) - 1.0)
        << "value " << v;
  }
  (void)h;
}

TEST(Histogram, MergeEqualsCombined) {
  Histogram a, b, combined;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBelow(100000));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.P50(), combined.P50());
  EXPECT_EQ(a.P99(), combined.P99());
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

// --------------------------------------------------------------- status ----

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Status::NotFound("key gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key gone");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Timeout("slow"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

// -------------------------------------------------------------- version ----

TEST(VersionVector, DominatesBasics) {
  VersionVector a(2), b(2);
  a.Set(0, 2);
  a.Set(1, 1);
  b.Set(0, 1);
  b.Set(1, 1);
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_FALSE(a.ConcurrentWith(b));
}

TEST(VersionVector, Concurrent) {
  VersionVector a(2), b(2);
  a.Set(0, 2);
  b.Set(1, 2);
  EXPECT_TRUE(a.ConcurrentWith(b));
  EXPECT_TRUE(b.ConcurrentWith(a));
}

TEST(VersionVector, DifferentLengthsComparable) {
  VersionVector a(1), b(3);
  a.Set(0, 5);
  b.Set(0, 5);
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_TRUE(b.Dominates(a));
  EXPECT_TRUE(a == b);
  b.Set(2, 1);
  EXPECT_FALSE(a.Dominates(b));
  EXPECT_TRUE(b.Dominates(a));
}

TEST(VersionVector, MergeMax) {
  VersionVector a(2), b(2);
  a.Set(0, 3);
  b.Set(1, 4);
  a.MergeMax(b);
  EXPECT_EQ(a.Get(0), 3u);
  EXPECT_EQ(a.Get(1), 4u);
  EXPECT_TRUE(a.Dominates(b));
}

TEST(VersionVector, SelfDominates) {
  VersionVector a(3);
  a.Set(1, 9);
  EXPECT_TRUE(a.Dominates(a));
  EXPECT_FALSE(a.ConcurrentWith(a));
}

TEST(VersionVector, EncodeDecodeRoundTrip) {
  VersionVector a(4);
  a.Set(0, 1);
  a.Set(2, 1u << 20);
  a.Set(3, UINT64_MAX / 2);
  ByteWriter w;
  a.Encode(&w);
  ByteReader r(w.data());
  VersionVector b;
  ASSERT_TRUE(b.Decode(&r));
  EXPECT_TRUE(a == b);
}

TEST(Version, NullVersion) {
  Version v;
  EXPECT_TRUE(v.IsNull());
  v.lamport = 1;
  EXPECT_FALSE(v.IsNull());
}

TEST(Version, LwwOrderTotal) {
  Version a, b;
  a.lamport = 10;
  a.origin = 0;
  b.lamport = 10;
  b.origin = 1;
  EXPECT_TRUE(a.LwwLess(b));
  EXPECT_FALSE(b.LwwLess(a));
  b.lamport = 9;
  EXPECT_TRUE(b.LwwLess(a));
}

TEST(Version, EncodeDecodeRoundTrip) {
  Version v;
  v.vv = VersionVector(3);
  v.vv.Set(1, 77);
  v.lamport = 123456789;
  v.origin = 2;
  ByteWriter w;
  v.Encode(&w);
  ByteReader r(w.data());
  Version out;
  ASSERT_TRUE(out.Decode(&r));
  EXPECT_TRUE(v == out);
}

TEST(Dependency, EncodeDecodeRoundTrip) {
  Dependency d;
  d.key = "some/key";
  d.version.lamport = 9;
  d.version.vv = VersionVector(2);
  d.version.vv.Set(0, 4);
  ByteWriter w;
  d.Encode(&w);
  ByteReader r(w.data());
  Dependency out;
  ASSERT_TRUE(out.Decode(&r));
  EXPECT_EQ(out.key, d.key);
  EXPECT_TRUE(out.version == d.version);
}

}  // namespace
}  // namespace chainreaction

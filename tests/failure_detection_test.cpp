// Heartbeat-based failure detection: nodes crash silently (no oracle call)
// and the membership service must notice, reconfigure, and keep the store
// correct. These clusters run permanent timers, so every test drives the
// simulator with bounded RunUntil windows.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "src/ycsb/driver.h"

namespace chainreaction {
namespace {

ClusterOptions DetectOpts(uint64_t seed = 1) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 10;
  opts.clients_per_dc = 3;
  opts.heartbeat_interval = 50 * kMillisecond;  // removal after ~200-250ms silence
  opts.seed = seed;
  return opts;
}

TEST(FailureDetection, SilentCrashIsDetectedAndRepaired) {
  Cluster cluster(DetectOpts());

  // Write some data first.
  ChainReactionClient* client = cluster.crx_client(0);
  int writes = 0;
  for (int i = 0; i < 30; ++i) {
    client->Put("fd-" + std::to_string(i), "v", [&](const auto&) { writes++; });
    cluster.sim()->RunUntil(cluster.sim()->Now() + 20 * kMillisecond);
  }
  ASSERT_EQ(writes, 30);
  const uint64_t epoch_before = cluster.membership(0)->epoch();

  // Crash a node *silently* — only the network knows.
  cluster.net()->Crash(cluster.ServerAddress(0, 4));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);

  EXPECT_EQ(cluster.membership(0)->failures_detected(), 1u);
  EXPECT_GT(cluster.membership(0)->epoch(), epoch_before);
  EXPECT_FALSE(cluster.membership(0)->ring().Contains(cluster.ServerAddress(0, 4)));

  // Every key must still be readable after the automatic repair.
  ChainReactionClient* reader = cluster.crx_client(1);
  for (int i = 0; i < 30; ++i) {
    bool found = false;
    reader->Get("fd-" + std::to_string(i),
                [&](const ChainReactionClient::GetResult& r) { found = r.found; });
    cluster.sim()->RunUntil(cluster.sim()->Now() + 50 * kMillisecond);
    EXPECT_TRUE(found) << "key fd-" << i;
  }
}

TEST(FailureDetection, HealthyClusterNeverEvicts) {
  Cluster cluster(DetectOpts(3));
  RunOptions unused;  // silence lint about unused include helpers
  (void)unused;

  // Light traffic for two simulated seconds.
  ChainReactionClient* client = cluster.crx_client(0);
  int ops = 0;
  std::function<void()> loop = [&]() {
    if (ops >= 100) {
      return;
    }
    client->Put("hk-" + std::to_string(ops % 7), "v", [&](const auto&) {
      ops++;
      loop();
    });
  };
  loop();
  cluster.sim()->RunUntil(cluster.sim()->Now() + 2 * kSecond);

  EXPECT_EQ(ops, 100);
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 0u);
  EXPECT_EQ(cluster.membership(0)->epoch(), 1u);
}

TEST(FailureDetection, WorkloadStaysCausalAcrossSilentCrash) {
  Cluster cluster(DetectOpts(7));
  cluster.Preload(100, 64);

  StatsCollector stats;
  uint64_t insert_counter = 100;
  CausalChecker checker;
  std::vector<std::unique_ptr<WorkloadDriver>> drivers;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    auto driver = std::make_unique<WorkloadDriver>(cluster.client(i), cluster.client_env(i),
                                                   WorkloadSpec::A(100, 64), 900 + i,
                                                   &insert_counter, &stats);
    const uint32_t session = cluster.client(i)->address();
    driver->on_write_complete = [&checker, session](const Key& key, const KvPutResult& r) {
      checker.RecordWrite(session, key, r.version, r.deps);
    };
    driver->on_read_complete = [&checker, session](const Key& key, const KvGetResult& r) {
      checker.RecordRead(session, key, r.found, r.version);
    };
    driver->Start();
    drivers.push_back(std::move(driver));
  }

  cluster.sim()->RunUntil(cluster.sim()->Now() + 500 * kMillisecond);
  cluster.net()->Crash(cluster.ServerAddress(0, 2));  // silent
  cluster.sim()->RunUntil(cluster.sim()->Now() + 2 * kSecond);
  for (auto& d : drivers) {
    d->Stop();
  }
  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);  // drain in-flight ops

  EXPECT_EQ(cluster.membership(0)->failures_detected(), 1u);
  EXPECT_GT(stats.TotalOps(), 500u);
  EXPECT_EQ(checker.violations(), 0u)
      << (checker.diagnostics().empty() ? "" : checker.diagnostics()[0]);
}

TEST(FailureDetection, FloorProtectsReplication) {
  // With servers == R the service must refuse to evict (a removal would
  // make chains impossible), even if a node goes silent.
  ClusterOptions opts = DetectOpts(9);
  opts.servers_per_dc = 3;
  opts.replication = 3;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);

  cluster.net()->Crash(cluster.ServerAddress(0, 1));
  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);
  EXPECT_EQ(cluster.membership(0)->failures_detected(), 0u);
  EXPECT_TRUE(cluster.membership(0)->ring().Contains(cluster.ServerAddress(0, 1)));
}

}  // namespace
}  // namespace chainreaction

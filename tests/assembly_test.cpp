// Cluster-wide trace assembly and critical-path attribution.
//
// Unit coverage: the critical-path decomposition (exact segment sums,
// dep-wait attribution, incomplete-trace honesty), the RenderJson <->
// ParseTraceJson round trip the HTTP pull path relies on, union-merge
// dedup, and aggregate publication. End-to-end coverage: assembly over a
// REAL TcpCluster in distributed-telemetry mode — every node holds only its
// own partial trace behind its own TelemetryServer, and the assembler must
// pull each node's /traces over HTTP (plus the client-side partials) to
// reconstruct cross-node timelines under the multi-loop, pipelined-ack
// deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/net/http_client.h"
#include "src/net/tcp_cluster.h"
#include "src/obs/assembly.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"

namespace chainreaction {
namespace {

// A fully-observed gated put: client 100 -> head 1 -> replica 2 (k-ack) ->
// tail 3, with a 500us dep-wait at the head.
TraceContext MakeGatedContext() {
  TraceContext ctx;
  ctx.id = 0xabc1;
  ctx.Annotate(HopKind::kClientPut, 100, 0, 0, 1000);
  ctx.Annotate(HopKind::kHeadRecv, 1, 0, 1, 1300);
  ctx.Annotate(HopKind::kHeadGated, 1, 0, 1, 1310);
  ctx.Annotate(HopKind::kDepUnblocked, 1, 0, 500, 1810, /*aux=*/0xfeed);
  ctx.Annotate(HopKind::kHeadApply, 1, 0, 1, 1820);
  ctx.Annotate(HopKind::kChainRecv, 2, 0, 2, 1900, /*aux=*/7);
  ctx.Annotate(HopKind::kChainApply, 2, 0, 2, 1910);
  ctx.Annotate(HopKind::kKAck, 2, 0, 2, 1910);
  ctx.Annotate(HopKind::kClientAck, 100, 0, 0, 2200);
  ctx.Annotate(HopKind::kTailStable, 3, 0, 3, 2500);
  return ctx;
}

TraceCollector::Trace CollectOne(const TraceContext& ctx, const std::string& note = "") {
  TraceCollector collector;
  collector.Report(ctx);
  if (!note.empty()) {
    collector.AnnotateNote(ctx.id, note);
  }
  TraceCollector::Trace trace;
  EXPECT_TRUE(collector.Find(ctx.id, &trace));
  return trace;
}

TEST(CriticalPath, ExactDecompositionOfGatedPut) {
  const TraceCollector::Trace trace =
      CollectOne(MakeGatedContext(), "blocked_by key=user42 version=[1]@5/dc0 chain=1->3");
  const CriticalPath cp = ComputeCriticalPath(trace);

  EXPECT_TRUE(cp.complete);
  EXPECT_EQ(cp.e2e_us, 1200);
  EXPECT_EQ(cp.net_us, 300 + 290);   // client->head + k_ack->client
  EXPECT_EQ(cp.encode_us, 10 + 10);  // recv->gate + unblock->apply
  EXPECT_EQ(cp.depwait_us, 500);
  EXPECT_EQ(cp.kack_us, 90);
  // The decomposition is exact: attributed segments sum to measured e2e.
  EXPECT_EQ(cp.net_us + cp.encode_us + cp.depwait_us + cp.kack_us, cp.e2e_us);
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
  // Stability is post-ack trailing lag, not part of the e2e sum.
  EXPECT_EQ(cp.stability_us, 2500 - 1820);
  EXPECT_EQ(cp.geo_us, -1);
  EXPECT_EQ(cp.blocked_by, "key=user42 version=[1]@5/dc0 chain=1->3");
  EXPECT_FALSE(cp.migration_overlap);

  // The timeline is monotone: begin-ordered, every span non-negative.
  ASSERT_FALSE(cp.segments.empty());
  for (size_t i = 0; i < cp.segments.size(); ++i) {
    EXPECT_LE(cp.segments[i].begin, cp.segments[i].end) << cp.segments[i].name;
    if (i > 0) {
      EXPECT_LE(cp.segments[i - 1].begin, cp.segments[i].begin);
    }
  }
  // The chain link to position 2 is split into net and process parts.
  const std::string rendered = RenderCriticalPath(cp);
  EXPECT_NE(rendered.find("link2:net"), std::string::npos);
  EXPECT_NE(rendered.find("dep_wait"), std::string::npos);
  EXPECT_NE(rendered.find("blocked_by key=user42"), std::string::npos);
}

TEST(CriticalPath, UngatedPutHasNoDepWait) {
  TraceContext ctx;
  ctx.id = 0xabc2;
  ctx.Annotate(HopKind::kClientPut, 100, 0, 0, 0);
  ctx.Annotate(HopKind::kHeadRecv, 1, 0, 0, 200);
  ctx.Annotate(HopKind::kHeadApply, 1, 0, 1, 230);
  ctx.Annotate(HopKind::kKAck, 2, 0, 2, 300);
  ctx.Annotate(HopKind::kClientAck, 100, 0, 0, 450);
  const CriticalPath cp = ComputeCriticalPath(CollectOne(ctx));
  EXPECT_TRUE(cp.complete);
  EXPECT_EQ(cp.depwait_us, 0);
  EXPECT_EQ(cp.encode_us, 30);
  EXPECT_EQ(cp.e2e_us, 450);
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
  EXPECT_TRUE(cp.blocked_by.empty());
}

TEST(CriticalPath, MissingHopsLowerCoverage) {
  // Only the client's view survived: e2e is known but nothing inside it.
  TraceContext ctx;
  ctx.id = 0xabc3;
  ctx.Annotate(HopKind::kClientPut, 100, 0, 0, 0);
  ctx.Annotate(HopKind::kClientAck, 100, 0, 0, 1000);
  const CriticalPath cp = ComputeCriticalPath(CollectOne(ctx));
  EXPECT_FALSE(cp.complete);
  EXPECT_EQ(cp.e2e_us, 1000);
  EXPECT_LT(cp.coverage, 1.0);
}

TEST(CriticalPath, MigrationOverlapFlagged) {
  TraceContext ctx = MakeGatedContext();
  ctx.Annotate(HopKind::kMigPhase, 1, 0, 12, 1821, /*aux=*/3);
  const CriticalPath cp = ComputeCriticalPath(CollectOne(ctx));
  EXPECT_TRUE(cp.migration_overlap);
}

TEST(TraceJson, RenderParseRoundTrip) {
  const TraceCollector::Trace trace =
      CollectOne(MakeGatedContext(), "blocked_by key=a\"b\\c version=[1]@1/dc0 chain=1->3");
  const std::string json = TraceCollector::RenderJson(trace);

  TraceCollector::Trace parsed;
  ASSERT_TRUE(ParseTraceJson(json, &parsed));
  EXPECT_EQ(parsed.id, trace.id);
  ASSERT_EQ(parsed.hops.size(), trace.hops.size());
  for (size_t i = 0; i < trace.hops.size(); ++i) {
    EXPECT_TRUE(parsed.hops[i] == trace.hops[i]) << "hop " << i;
  }
  ASSERT_EQ(parsed.notes.size(), 1u);
  EXPECT_EQ(parsed.notes[0], trace.notes[0]);  // escaping round-trips
}

TEST(TraceJson, RejectsGarbage) {
  TraceCollector::Trace parsed;
  EXPECT_FALSE(ParseTraceJson("", &parsed));
  EXPECT_FALSE(ParseTraceJson("{\"id\":\"zz\"}", &parsed));
  EXPECT_FALSE(ParseTraceJson("[1,2,3]", &parsed));
}

TEST(TraceAssembler, MergeFromUnionDedups) {
  const TraceContext full = MakeGatedContext();

  // Two nodes each saw an overlapping subset of the hops.
  TraceContext part1{full.id, {full.hops.begin(), full.hops.begin() + 6}};
  TraceContext part2{full.id, {full.hops.begin() + 4, full.hops.end()}};
  TraceCollector node1, node2;
  node1.Report(part1);
  node1.AnnotateNote(full.id, "blocked_by key=k version=[1]@1/dc0 chain=1->3");
  node2.Report(part2);

  TraceAssembler assembler;
  EXPECT_EQ(assembler.MergeFrom(node1), 1u);
  EXPECT_EQ(assembler.MergeFrom(node2), 1u);
  EXPECT_EQ(assembler.MergeFrom(node1), 1u);  // re-merge is idempotent

  TraceCollector::Trace merged;
  ASSERT_TRUE(assembler.collector()->Find(full.id, &merged));
  EXPECT_EQ(merged.hops.size(), full.hops.size());  // duplicates collapsed
  ASSERT_EQ(merged.notes.size(), 1u);

  CriticalPath cp;
  ASSERT_TRUE(assembler.AssembleOne(full.id, &cp));
  EXPECT_TRUE(cp.complete);
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
}

TEST(TraceAssembler, PublishAggregatesRecordsMetrics) {
  TraceAssembler assembler;
  TraceCollector src;
  src.Report(MakeGatedContext());
  assembler.MergeFrom(src);

  MetricsRegistry metrics;
  const std::vector<CriticalPath> cps = assembler.PublishAggregates(&metrics);
  ASSERT_EQ(cps.size(), 1u);
  const std::string text = metrics.RenderText();
  EXPECT_NE(text.find("crx_cp_depwait_us"), std::string::npos);
  EXPECT_NE(text.find("crx_cp_kack_us"), std::string::npos);
  EXPECT_NE(text.find("crx_cp_net_us"), std::string::npos);
  EXPECT_NE(text.find("crx_cp_assembled_total"), std::string::npos);
  EXPECT_NE(text.find("crx_cp_coverage_pct"), std::string::npos);
}

TEST(TraceAssembler, PullsTracesOverHttp) {
  TraceCollector node;
  node.Report(MakeGatedContext());
  node.AnnotateNote(0xabc1, "blocked_by key=u1 version=[1]@2/dc0 chain=1->3");

  TelemetryServer server(0);
  ASSERT_TRUE(server.ok());
  server.AttachTraces(&node);
  server.Start();

  TraceAssembler assembler;
  EXPECT_EQ(assembler.PullHttp(server.port()), 1);
  TraceCollector::Trace pulled;
  ASSERT_TRUE(assembler.collector()->Find(0xabc1, &pulled));
  EXPECT_EQ(pulled.hops.size(), 10u);
  ASSERT_EQ(pulled.notes.size(), 1u);

  CriticalPath cp;
  ASSERT_TRUE(assembler.AssembleOne(0xabc1, &cp));
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
  EXPECT_EQ(cp.blocked_by, "key=u1 version=[1]@2/dc0 chain=1->3");
  server.Stop();

  // An unreachable server is an error, not zero traces.
  TraceAssembler dead;
  EXPECT_EQ(dead.PullHttp(1), -1);
}

TEST(TelemetryServer, ServesCriticalPathEndpoint) {
  TraceCollector traces;
  traces.Report(MakeGatedContext());
  TelemetryServer server(0);
  ASSERT_TRUE(server.ok());
  server.AttachTraces(&traces);
  server.Start();

  const HttpClientResponse human = HttpGet(server.port(), "/criticalpath");
  ASSERT_TRUE(human.ok);
  EXPECT_NE(human.body.find("coverage"), std::string::npos);
  EXPECT_NE(human.body.find("dep_wait"), std::string::npos);

  const HttpClientResponse json = HttpGet(server.port(), "/criticalpath?id=000000000000abc1&format=json");
  ASSERT_TRUE(json.ok);
  EXPECT_NE(json.body.find("\"e2e_us\":1200"), std::string::npos);
  EXPECT_NE(json.body.find("\"coverage\":"), std::string::npos);

  const HttpClientResponse missing = HttpGet(server.port(), "/criticalpath?id=dead");
  EXPECT_EQ(missing.status, 404);
  server.Stop();
}

// Satellite: cross-node assembly over a real TCP deployment. Each node's
// hops are visible only through its own TelemetryServer; the assembler must
// reconstruct full timelines via HTTP pulls + the client partials, under
// the multi-loop runtime with pipelined cumulative acks.
TEST(TcpAssembly, CrossNodeTimelinesOverPerNodeTelemetry) {
  MetricsRegistry metrics;
  TcpCluster::Options opts;
  opts.num_nodes = 5;
  opts.loop_threads = 2;
  opts.num_clients = 4;
  opts.client_loop_threads = 2;
  opts.seed = 11;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.client_timeout = 5 * kSecond;
  opts.config.ack_batch_window = 100;  // pipelined cumulative acks
  opts.config.trace_sample_every = 8;
  opts.metrics = &metrics;
  opts.per_node_telemetry = true;
  TcpCluster cluster(opts);

  TcpCluster::LoadOptions load;
  load.duration = 400 * kMillisecond;
  load.value_size = 64;
  load.key_space = 256;
  load.get_fraction = 0.0;  // pure puts: every sampled op crosses the chain
  load.pipeline = 4;
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  ASSERT_GT(result.ops, 0u);
  EXPECT_EQ(result.failures, 0u);

  // The client partials landed in the client-side collector only.
  ASSERT_GT(cluster.client_collector()->size(), 0u);

  TraceAssembler assembler;
  assembler.MergeFrom(*cluster.client_collector());
  for (NodeId n = 0; n < opts.num_nodes; ++n) {
    const uint16_t port = cluster.node_telemetry_port(n);
    ASSERT_NE(port, 0) << "node " << n << " telemetry did not bind";
    EXPECT_GE(assembler.PullHttp(port), 0) << "node " << n;
  }

  const std::vector<CriticalPath> cps = assembler.PublishAggregates(&metrics);
  ASSERT_FALSE(cps.empty());

  size_t complete = 0, gated = 0, gated_attributed = 0;
  for (const CriticalPath& cp : cps) {
    if (!cp.complete) {
      continue;  // sampled put still in flight at shutdown
    }
    ++complete;
    // Every hop of the cross-node path must be present...
    TraceCollector::Trace trace;
    ASSERT_TRUE(assembler.collector()->Find(cp.id, &trace));
    auto has = [&trace](HopKind k) {
      for (const TraceHop& h : trace.hops) {
        if (h.kind == k) {
          return true;
        }
      }
      return false;
    };
    EXPECT_TRUE(has(HopKind::kClientPut));
    EXPECT_TRUE(has(HopKind::kHeadRecv));
    EXPECT_TRUE(has(HopKind::kHeadApply));
    EXPECT_TRUE(has(HopKind::kKAck));
    EXPECT_TRUE(has(HopKind::kClientAck));
    // ... the timeline monotone (TcpRuntime::Now is process-wide) ...
    for (size_t i = 1; i < cp.segments.size(); ++i) {
      EXPECT_LE(cp.segments[i - 1].begin, cp.segments[i].begin);
      EXPECT_LE(cp.segments[i].begin, cp.segments[i].end);
    }
    // ... and the decomposition exact: segments sum to measured e2e.
    EXPECT_EQ(cp.net_us + cp.encode_us + cp.depwait_us + cp.kack_us, cp.e2e_us)
        << "trace " << std::hex << cp.id;
    EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
    if (cp.depwait_us > 0) {
      ++gated;
      if (!cp.blocked_by.empty()) {
        ++gated_attributed;
      }
    }
  }
  ASSERT_GT(complete, 0u);
  // Dep-wait attribution survives the HTTP pull: every gated path names
  // the dependency that blocked it.
  EXPECT_EQ(gated, gated_attributed);

  // The per-node chain-lag gauge behind the dep-stall watchdog is live.
  EXPECT_NE(metrics.RenderText().find("crx_chain_lag_us"), std::string::npos);
}

}  // namespace
}  // namespace chainreaction

# Empty dependencies file for bench_e9_k_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_dep_wait.dir/bench_e10_dep_wait.cpp.o"
  "CMakeFiles/bench_e10_dep_wait.dir/bench_e10_dep_wait.cpp.o.d"
  "bench_e10_dep_wait"
  "bench_e10_dep_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dep_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_e10_dep_wait.
# This may be replaced when dependencies are built.

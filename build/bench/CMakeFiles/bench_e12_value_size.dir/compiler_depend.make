# Empty compiler generated dependencies file for bench_e12_value_size.
# This may be replaced when dependencies are built.

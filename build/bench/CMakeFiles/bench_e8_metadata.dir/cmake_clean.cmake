file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_metadata.dir/bench_e8_metadata.cpp.o"
  "CMakeFiles/bench_e8_metadata.dir/bench_e8_metadata.cpp.o.d"
  "bench_e8_metadata"
  "bench_e8_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e13_multiget.
# This may be replaced when dependencies are built.

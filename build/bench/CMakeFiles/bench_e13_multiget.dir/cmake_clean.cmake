file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_multiget.dir/bench_e13_multiget.cpp.o"
  "CMakeFiles/bench_e13_multiget.dir/bench_e13_multiget.cpp.o.d"
  "bench_e13_multiget"
  "bench_e13_multiget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_multiget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_visibility.dir/bench_e7_visibility.cpp.o"
  "CMakeFiles/bench_e7_visibility.dir/bench_e7_visibility.cpp.o.d"
  "bench_e7_visibility"
  "bench_e7_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

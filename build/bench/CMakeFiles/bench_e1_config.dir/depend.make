# Empty dependencies file for bench_e1_config.
# This may be replaced when dependencies are built.

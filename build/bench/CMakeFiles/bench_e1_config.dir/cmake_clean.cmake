file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_config.dir/bench_e1_config.cpp.o"
  "CMakeFiles/bench_e1_config.dir/bench_e1_config.cpp.o.d"
  "bench_e1_config"
  "bench_e1_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

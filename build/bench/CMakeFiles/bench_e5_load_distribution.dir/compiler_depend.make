# Empty compiler generated dependencies file for bench_e5_load_distribution.
# This may be replaced when dependencies are built.

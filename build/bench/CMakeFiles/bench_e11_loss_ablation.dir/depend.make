# Empty dependencies file for bench_e11_loss_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crx_loadgen.dir/crx_loadgen.cpp.o"
  "CMakeFiles/crx_loadgen.dir/crx_loadgen.cpp.o.d"
  "crx_loadgen"
  "crx_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crx_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

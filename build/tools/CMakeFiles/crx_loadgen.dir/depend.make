# Empty dependencies file for crx_loadgen.
# This may be replaced when dependencies are built.

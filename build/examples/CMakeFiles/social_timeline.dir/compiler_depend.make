# Empty compiler generated dependencies file for social_timeline.
# This may be replaced when dependencies are built.

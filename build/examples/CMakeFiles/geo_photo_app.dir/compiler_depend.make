# Empty compiler generated dependencies file for geo_photo_app.
# This may be replaced when dependencies are built.

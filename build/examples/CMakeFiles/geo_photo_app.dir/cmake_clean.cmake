file(REMOVE_RECURSE
  "CMakeFiles/geo_photo_app.dir/geo_photo_app.cpp.o"
  "CMakeFiles/geo_photo_app.dir/geo_photo_app.cpp.o.d"
  "geo_photo_app"
  "geo_photo_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_photo_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_ycsb.dir/driver.cc.o"
  "CMakeFiles/chainrx_ycsb.dir/driver.cc.o.d"
  "CMakeFiles/chainrx_ycsb.dir/generators.cc.o"
  "CMakeFiles/chainrx_ycsb.dir/generators.cc.o.d"
  "CMakeFiles/chainrx_ycsb.dir/workload.cc.o"
  "CMakeFiles/chainrx_ycsb.dir/workload.cc.o.d"
  "libchainrx_ycsb.a"
  "libchainrx_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chainrx_ycsb.
# This may be replaced when dependencies are built.

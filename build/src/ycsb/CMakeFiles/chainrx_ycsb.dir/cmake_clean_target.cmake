file(REMOVE_RECURSE
  "libchainrx_ycsb.a"
)

file(REMOVE_RECURSE
  "libchainrx_baselines.a"
)

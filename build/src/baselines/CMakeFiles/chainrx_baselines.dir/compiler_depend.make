# Empty compiler generated dependencies file for chainrx_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_baselines.dir/eventual.cc.o"
  "CMakeFiles/chainrx_baselines.dir/eventual.cc.o.d"
  "libchainrx_baselines.a"
  "libchainrx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

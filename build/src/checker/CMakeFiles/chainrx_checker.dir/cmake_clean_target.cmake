file(REMOVE_RECURSE
  "libchainrx_checker.a"
)

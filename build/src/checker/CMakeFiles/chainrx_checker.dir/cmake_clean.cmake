file(REMOVE_RECURSE
  "CMakeFiles/chainrx_checker.dir/causal_checker.cc.o"
  "CMakeFiles/chainrx_checker.dir/causal_checker.cc.o.d"
  "CMakeFiles/chainrx_checker.dir/linearizability.cc.o"
  "CMakeFiles/chainrx_checker.dir/linearizability.cc.o.d"
  "libchainrx_checker.a"
  "libchainrx_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

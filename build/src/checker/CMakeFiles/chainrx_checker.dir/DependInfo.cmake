
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/causal_checker.cc" "src/checker/CMakeFiles/chainrx_checker.dir/causal_checker.cc.o" "gcc" "src/checker/CMakeFiles/chainrx_checker.dir/causal_checker.cc.o.d"
  "/root/repo/src/checker/linearizability.cc" "src/checker/CMakeFiles/chainrx_checker.dir/linearizability.cc.o" "gcc" "src/checker/CMakeFiles/chainrx_checker.dir/linearizability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chainrx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

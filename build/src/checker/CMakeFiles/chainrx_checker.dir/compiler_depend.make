# Empty compiler generated dependencies file for chainrx_checker.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchainrx_net.a"
)

# Empty dependencies file for chainrx_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_net.dir/tcp_runtime.cc.o"
  "CMakeFiles/chainrx_net.dir/tcp_runtime.cc.o.d"
  "libchainrx_net.a"
  "libchainrx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

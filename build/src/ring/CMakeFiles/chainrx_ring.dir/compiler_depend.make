# Empty compiler generated dependencies file for chainrx_ring.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchainrx_ring.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_ring.dir/membership.cc.o"
  "CMakeFiles/chainrx_ring.dir/membership.cc.o.d"
  "CMakeFiles/chainrx_ring.dir/ring.cc.o"
  "CMakeFiles/chainrx_ring.dir/ring.cc.o.d"
  "libchainrx_ring.a"
  "libchainrx_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

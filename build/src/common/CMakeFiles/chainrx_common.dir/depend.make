# Empty dependencies file for chainrx_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchainrx_common.a"
)

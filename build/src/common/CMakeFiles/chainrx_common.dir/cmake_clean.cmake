file(REMOVE_RECURSE
  "CMakeFiles/chainrx_common.dir/histogram.cc.o"
  "CMakeFiles/chainrx_common.dir/histogram.cc.o.d"
  "CMakeFiles/chainrx_common.dir/logging.cc.o"
  "CMakeFiles/chainrx_common.dir/logging.cc.o.d"
  "CMakeFiles/chainrx_common.dir/result.cc.o"
  "CMakeFiles/chainrx_common.dir/result.cc.o.d"
  "CMakeFiles/chainrx_common.dir/rng.cc.o"
  "CMakeFiles/chainrx_common.dir/rng.cc.o.d"
  "CMakeFiles/chainrx_common.dir/version.cc.o"
  "CMakeFiles/chainrx_common.dir/version.cc.o.d"
  "libchainrx_common.a"
  "libchainrx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chainrx_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_harness.dir/cluster.cc.o"
  "CMakeFiles/chainrx_harness.dir/cluster.cc.o.d"
  "CMakeFiles/chainrx_harness.dir/experiment.cc.o"
  "CMakeFiles/chainrx_harness.dir/experiment.cc.o.d"
  "libchainrx_harness.a"
  "libchainrx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchainrx_harness.a"
)

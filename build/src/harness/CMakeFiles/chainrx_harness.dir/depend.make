# Empty dependencies file for chainrx_harness.
# This may be replaced when dependencies are built.

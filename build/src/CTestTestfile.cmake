# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("msg")
subdirs("net")
subdirs("ring")
subdirs("storage")
subdirs("chain")
subdirs("core")
subdirs("geo")
subdirs("baselines")
subdirs("ycsb")
subdirs("checker")
subdirs("harness")

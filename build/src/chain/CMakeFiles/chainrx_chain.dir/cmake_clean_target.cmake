file(REMOVE_RECURSE
  "libchainrx_chain.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_chain.dir/cr.cc.o"
  "CMakeFiles/chainrx_chain.dir/cr.cc.o.d"
  "CMakeFiles/chainrx_chain.dir/craq.cc.o"
  "CMakeFiles/chainrx_chain.dir/craq.cc.o.d"
  "libchainrx_chain.a"
  "libchainrx_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/cr.cc" "src/chain/CMakeFiles/chainrx_chain.dir/cr.cc.o" "gcc" "src/chain/CMakeFiles/chainrx_chain.dir/cr.cc.o.d"
  "/root/repo/src/chain/craq.cc" "src/chain/CMakeFiles/chainrx_chain.dir/craq.cc.o" "gcc" "src/chain/CMakeFiles/chainrx_chain.dir/craq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chainrx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/chainrx_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/chainrx_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chainrx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

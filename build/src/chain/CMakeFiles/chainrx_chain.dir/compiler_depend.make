# Empty compiler generated dependencies file for chainrx_chain.
# This may be replaced when dependencies are built.

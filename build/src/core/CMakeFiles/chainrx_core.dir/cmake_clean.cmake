file(REMOVE_RECURSE
  "CMakeFiles/chainrx_core.dir/chainreaction_client.cc.o"
  "CMakeFiles/chainrx_core.dir/chainreaction_client.cc.o.d"
  "CMakeFiles/chainrx_core.dir/chainreaction_node.cc.o"
  "CMakeFiles/chainrx_core.dir/chainreaction_node.cc.o.d"
  "libchainrx_core.a"
  "libchainrx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for chainrx_core.
# This may be replaced when dependencies are built.

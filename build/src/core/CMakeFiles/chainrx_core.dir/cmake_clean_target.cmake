file(REMOVE_RECURSE
  "libchainrx_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_storage.dir/checkpoint.cc.o"
  "CMakeFiles/chainrx_storage.dir/checkpoint.cc.o.d"
  "CMakeFiles/chainrx_storage.dir/versioned_store.cc.o"
  "CMakeFiles/chainrx_storage.dir/versioned_store.cc.o.d"
  "libchainrx_storage.a"
  "libchainrx_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

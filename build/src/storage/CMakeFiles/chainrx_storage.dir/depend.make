# Empty dependencies file for chainrx_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libchainrx_storage.a"
)

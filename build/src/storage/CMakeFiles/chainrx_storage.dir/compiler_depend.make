# Empty compiler generated dependencies file for chainrx_storage.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for chainrx_geo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_geo.dir/geo_replicator.cc.o"
  "CMakeFiles/chainrx_geo.dir/geo_replicator.cc.o.d"
  "libchainrx_geo.a"
  "libchainrx_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

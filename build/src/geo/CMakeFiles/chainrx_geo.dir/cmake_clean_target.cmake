file(REMOVE_RECURSE
  "libchainrx_geo.a"
)

file(REMOVE_RECURSE
  "libchainrx_msg.a"
)

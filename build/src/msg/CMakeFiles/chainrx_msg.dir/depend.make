# Empty dependencies file for chainrx_msg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_msg.dir/message.cc.o"
  "CMakeFiles/chainrx_msg.dir/message.cc.o.d"
  "libchainrx_msg.a"
  "libchainrx_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for chainrx_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chainrx_sim.dir/network.cc.o"
  "CMakeFiles/chainrx_sim.dir/network.cc.o.d"
  "CMakeFiles/chainrx_sim.dir/simulator.cc.o"
  "CMakeFiles/chainrx_sim.dir/simulator.cc.o.d"
  "libchainrx_sim.a"
  "libchainrx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainrx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libchainrx_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/client_session_test.dir/client_session_test.cpp.o"
  "CMakeFiles/client_session_test.dir/client_session_test.cpp.o.d"
  "client_session_test"
  "client_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

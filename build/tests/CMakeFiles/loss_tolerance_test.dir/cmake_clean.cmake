file(REMOVE_RECURSE
  "CMakeFiles/loss_tolerance_test.dir/loss_tolerance_test.cpp.o"
  "CMakeFiles/loss_tolerance_test.dir/loss_tolerance_test.cpp.o.d"
  "loss_tolerance_test"
  "loss_tolerance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_tolerance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

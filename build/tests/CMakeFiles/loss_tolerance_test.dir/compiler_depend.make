# Empty compiler generated dependencies file for loss_tolerance_test.
# This may be replaced when dependencies are built.

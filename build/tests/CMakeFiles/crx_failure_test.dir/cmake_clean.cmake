file(REMOVE_RECURSE
  "CMakeFiles/crx_failure_test.dir/crx_failure_test.cpp.o"
  "CMakeFiles/crx_failure_test.dir/crx_failure_test.cpp.o.d"
  "crx_failure_test"
  "crx_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crx_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

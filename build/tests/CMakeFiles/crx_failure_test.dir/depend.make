# Empty dependencies file for crx_failure_test.
# This may be replaced when dependencies are built.

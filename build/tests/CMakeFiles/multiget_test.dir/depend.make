# Empty dependencies file for multiget_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multiget_test.dir/multiget_test.cpp.o"
  "CMakeFiles/multiget_test.dir/multiget_test.cpp.o.d"
  "multiget_test"
  "multiget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/net_test.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/chainrx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chainrx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/chainrx_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/chainrx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/chainrx_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chainrx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chainrx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

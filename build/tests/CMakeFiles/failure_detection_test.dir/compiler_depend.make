# Empty compiler generated dependencies file for failure_detection_test.
# This may be replaced when dependencies are built.

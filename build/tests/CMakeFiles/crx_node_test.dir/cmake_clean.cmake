file(REMOVE_RECURSE
  "CMakeFiles/crx_node_test.dir/crx_node_test.cpp.o"
  "CMakeFiles/crx_node_test.dir/crx_node_test.cpp.o.d"
  "crx_node_test"
  "crx_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crx_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

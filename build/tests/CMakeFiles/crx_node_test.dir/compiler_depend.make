# Empty compiler generated dependencies file for crx_node_test.
# This may be replaced when dependencies are built.

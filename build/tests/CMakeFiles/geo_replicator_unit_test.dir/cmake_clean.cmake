file(REMOVE_RECURSE
  "CMakeFiles/geo_replicator_unit_test.dir/geo_replicator_unit_test.cpp.o"
  "CMakeFiles/geo_replicator_unit_test.dir/geo_replicator_unit_test.cpp.o.d"
  "geo_replicator_unit_test"
  "geo_replicator_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_replicator_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

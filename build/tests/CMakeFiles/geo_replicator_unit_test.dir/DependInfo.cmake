
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geo_replicator_unit_test.cpp" "tests/CMakeFiles/geo_replicator_unit_test.dir/geo_replicator_unit_test.cpp.o" "gcc" "tests/CMakeFiles/geo_replicator_unit_test.dir/geo_replicator_unit_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/chainrx_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/chainrx_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/chainrx_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/chainrx_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/chainrx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/chainrx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/chainrx_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/chainrx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/chainrx_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/chainrx_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chainrx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chainrx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

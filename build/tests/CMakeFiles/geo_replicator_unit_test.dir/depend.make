# Empty dependencies file for geo_replicator_unit_test.
# This may be replaced when dependencies are built.

// E5 — Figure: fraction of reads served per chain position.
//
// The paper's core mechanism made visible: classic CR serves 100% of reads
// at position R (the tail); CRAQ spreads reads uniformly but pays version
// queries; ChainReaction spreads reads across the chain prefix allowed by
// client metadata — close to uniform for read-mostly data, head-skewed
// right after writes.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void DistributionRow(const char* label, SystemKind system, uint32_t replication,
                     const WorkloadSpec& spec) {
  CellOptions cell;
  cell.system = system;
  cell.replication = replication;
  cell.k_stability = std::min(2u, replication);
  cell.spec = spec;
  CellResult result = RunCell(cell);
  const std::vector<uint64_t> by_pos = result.cluster->ReadsByPosition();
  uint64_t total = 0;
  for (uint64_t c : by_pos) {
    total += c;
  }
  std::vector<std::string> row = {label};
  for (uint32_t p = 0; p < replication; ++p) {
    const double frac =
        total == 0 || p >= by_pos.size()
            ? 0.0
            : 100.0 * static_cast<double>(by_pos[p]) / static_cast<double>(total);
    row.push_back(Fmt("%.1f%%", frac));
  }
  while (row.size() < 6) {
    row.push_back("-");
  }
  PrintTableRow(row);
  if (system == SystemKind::kChainReaction) {
    // Same data at node granularity, straight from the metrics registry:
    // the position spread above should come from all nodes, not a few hot
    // ones picking up the slack.
    const MetricsSnapshot snap = result.cluster->metrics()->Snapshot();
    const ClusterOptions& opts = result.cluster->options();
    std::printf("    per-node reads:");
    for (uint16_t dc = 0; dc < opts.num_dcs; ++dc) {
      for (uint32_t i = 0; i < opts.servers_per_dc; ++i) {
        const NodeId node = result.cluster->ServerAddress(dc, i);
        const int64_t reads = snap.SumCounters("crx_node_reads_served",
                                               "node=" + std::to_string(node) + ",");
        std::printf(" n%u=%lld", node, static_cast<long long>(reads));
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintTableHeader("E5: reads served per chain position (pos1 = head)",
                   {"config", "pos1", "pos2", "pos3", "pos4", "pos5"});
  DistributionRow("CRX R=3 YCSB-B", SystemKind::kChainReaction, 3, WorkloadSpec::B(1000, 1024));
  DistributionRow("CRX R=3 YCSB-C", SystemKind::kChainReaction, 3, WorkloadSpec::C(1000, 1024));
  DistributionRow("CRX R=5 YCSB-B", SystemKind::kChainReaction, 5, WorkloadSpec::B(1000, 1024));
  DistributionRow("CRX R=3 YCSB-A", SystemKind::kChainReaction, 3, WorkloadSpec::A(1000, 1024));
  DistributionRow("CRAQ R=3 YCSB-B", SystemKind::kCraq, 3, WorkloadSpec::B(1000, 1024));
  std::printf("(CR serves 100%% of reads at the tail by construction)\n\n");
  return 0;
}

// E3 — Figure: read and write latency (mean / p50 / p99) per system, YCSB
// A (update-heavy) and B (read-heavy).
//
// Paper shape: ChainReaction reads are served by one hop to any allowed
// replica (low, flat); CRAQ reads spike under writes (dirty objects add a
// tail round trip); CR writes and CRAQ writes traverse the full chain;
// ChainReaction writes stop at node k (here k=2 of R=3), so they sit
// between R1W1's single-replica ack and CR's full-chain ack.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void LatencyTable(const WorkloadSpec& spec, const char* title) {
  PrintTableHeader(title, {"system", "rd-mean", "rd-p50", "rd-p99", "wr-mean", "wr-p50",
                           "wr-p99"});
  for (SystemKind system : AllSystems()) {
    CellOptions cell;
    cell.system = system;
    cell.spec = spec;
    CellResult result = RunCell(cell);
    const Histogram& r = result.run.stats.read_latency;
    const Histogram& w = result.run.stats.write_latency;
    PrintTableRow({SystemKindName(system), Fmt("%.0fus", r.Mean()),
                   FormatMicros(r.P50()), FormatMicros(r.P99()),
                   w.count() > 0 ? Fmt("%.0fus", w.Mean()) : "-",
                   w.count() > 0 ? FormatMicros(w.P50()) : "-",
                   w.count() > 0 ? FormatMicros(w.P99()) : "-"});
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  LatencyTable(WorkloadSpec::A(1000, 1024), "E3a: latency, YCSB-A (50/50)");
  LatencyTable(WorkloadSpec::B(1000, 1024), "E3b: latency, YCSB-B (95/5)");
  std::printf("\n");
  return 0;
}

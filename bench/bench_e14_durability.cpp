// E14 — Durability: what group commit buys, and what recovery costs.
//
// Part 1 measures the WAL directly: wall-clock cost of N appends under each
// fsync policy. kAlways pays one fsync per record; kBatch amortizes one
// fsync over ~batch_max_records (group commit) and should land within 2x of
// kNone, which never fsyncs at all.
//
// Part 2 runs the same simulated YCSB-A cell with per-node WALs under each
// policy: simulated throughput is policy-independent (the simulator's cost
// model does not charge for host-side fsyncs), but the crx_wal_* counters
// show the fsync amplification each policy would impose on a real
// deployment.
//
// Part 3 measures crash recovery: replay wall time vs. WAL record count.
// Expected shape: linear — us/record roughly flat as the log grows.
#include <cstdio>
#include <chrono>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "src/core/chainreaction_node.h"
#include "src/wal/wal.h"

using namespace chainreaction;

namespace {

std::string ScratchDir(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("crx_e14_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WalRecord MakeRecord(uint64_t i) {
  Version v;
  v.lamport = i + 1;
  v.origin = 0;
  v.vv = VersionVector(1);
  v.vv.Set(0, i + 1);
  return WalRecord::Apply("key-" + std::to_string(i % 512),
                          std::string(100, 'x'), v, {});
}

// Appends `n` records under `policy` and reports wall time + fsync count.
void AppendCell(FsyncPolicy policy, uint32_t batch_records, uint64_t n) {
  const std::string dir = ScratchDir(FsyncPolicyName(policy) +
                                     std::to_string(batch_records));
  WalOptions opts;
  opts.policy = policy;
  opts.batch_max_records = batch_records;
  std::unique_ptr<Wal> wal;
  Status st = Wal::Open(dir, opts, &wal);
  if (!st.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n", st.ToString().c_str());
    return;
  }
  const int64_t start = NowUs();
  for (uint64_t i = 0; i < n; ++i) {
    wal->Append(MakeRecord(i));
  }
  wal->Flush();
  const int64_t wall = NowUs() - start;
  const uint64_t fsyncs = wal->fsyncs();
  const uint64_t bytes = wal->bytes_written();
  wal.reset();
  std::filesystem::remove_all(dir);

  const double per_record = static_cast<double>(wall) / static_cast<double>(n);
  const double ops_sec = wall > 0 ? 1e6 * static_cast<double>(n) / wall : 0.0;
  std::string label = FsyncPolicyName(policy);
  if (policy == FsyncPolicy::kBatch) {
    label += "(" + std::to_string(batch_records) + ")";
  }
  PrintTableRow({label, FmtU(n), FormatMicros(wall), Fmt("%.2fus", per_record),
                 Fmt("%.0f", ops_sec), FmtU(fsyncs), FmtU(bytes / 1024) + "KiB"});
  std::fflush(stdout);
}

// One simulated YCSB-A cell with durable servers (or without, mode "off").
void ClusterCell(const char* mode, bool durable, FsyncPolicy policy) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 6;
  opts.clients_per_dc = 24;
  opts.seed = 7;
  if (durable) {
    opts.data_root = ScratchDir(std::string("cluster_") + mode);
    opts.fsync_policy = policy;
  }
  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::A(1000, 256);
  run.warmup = 200 * kMillisecond;
  run.measure = 500 * kMillisecond;
  const RunResult result = RunWorkload(&cluster, run);

  uint64_t appends = 0, fsyncs = 0;
  if (durable) {
    const MetricsSnapshot snap = cluster.metrics()->Snapshot();
    appends = snap.SumCounters("crx_wal_appends");
    fsyncs = snap.SumCounters("crx_wal_fsyncs");
    std::filesystem::remove_all(opts.data_root);
  }
  const double per_append =
      appends > 0 ? static_cast<double>(fsyncs) / static_cast<double>(appends) : 0.0;
  PrintTableRow({mode, Fmt("%.0f", result.throughput_ops_sec), FmtU(appends),
                 FmtU(fsyncs), durable ? Fmt("%.3f", per_append) : "-"});
  std::fflush(stdout);
}

// Writes `n` records, then times a cold ChainReactionNode::RecoverFrom.
void RecoveryCell(uint64_t n) {
  const std::string dir = ScratchDir("recover_" + std::to_string(n));
  {
    WalOptions opts;
    opts.policy = FsyncPolicy::kNone;  // populate fast; replay cost is the same
    std::unique_ptr<Wal> wal;
    Status st = Wal::Open(dir, opts, &wal);
    if (!st.ok()) {
      std::fprintf(stderr, "wal open failed: %s\n", st.ToString().c_str());
      return;
    }
    for (uint64_t i = 0; i < n; ++i) {
      wal->Append(MakeRecord(i));
      if (i % 4 == 0) {
        wal->Append(WalRecord::Stable(MakeRecord(i).key, MakeRecord(i).version));
      }
    }
  }  // clean shutdown flushes

  CrxConfig cfg;
  cfg.replication = 1;
  cfg.k_stability = 1;
  ChainReactionNode node(/*id=*/1, cfg, Ring({1}, cfg.vnodes, 1));
  const Status st = node.RecoverFrom(dir);
  std::filesystem::remove_all(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", st.ToString().c_str());
    return;
  }
  const WalReplayStats& stats = node.last_recovery_stats();
  const int64_t wall = node.last_recovery_replay_us();
  const double per_record =
      stats.records > 0 ? static_cast<double>(wall) / static_cast<double>(stats.records)
                        : 0.0;
  PrintTableRow({FmtU(n), FmtU(stats.records), FmtU(stats.segments_replayed),
                 FormatMicros(wall), Fmt("%.2fus", per_record),
                 FmtU(node.store().total_versions())});
  std::fflush(stdout);
}

}  // namespace

int main() {
  const uint64_t kAppends = 20000;
  PrintTableHeader("E14a: WAL append cost by fsync policy (100B values)",
                   {"policy", "appends", "wall", "us/append", "appends/s", "fsyncs",
                    "bytes"});
  AppendCell(FsyncPolicy::kAlways, 0, kAppends);
  AppendCell(FsyncPolicy::kBatch, 16, kAppends);
  AppendCell(FsyncPolicy::kBatch, 64, kAppends);
  AppendCell(FsyncPolicy::kBatch, 256, kAppends);
  AppendCell(FsyncPolicy::kNone, 0, kAppends);
  std::printf(
      "(group commit amortizes one fsync over the batch: larger batches "
      "approach none — batch(256) should sit within ~2x of it — while "
      "always pays one fsync per record)\n\n");

  PrintTableHeader("E14b: YCSB-A on durable servers, 6 nodes, R=3",
                   {"fsync", "ops/s", "wal appends", "fsyncs", "fsyncs/append"});
  ClusterCell("off", false, FsyncPolicy::kNone);
  ClusterCell("none", true, FsyncPolicy::kNone);
  ClusterCell("batch", true, FsyncPolicy::kBatch);
  ClusterCell("always", true, FsyncPolicy::kAlways);
  std::printf(
      "(simulated ops/s is fsync-independent by construction; the counters "
      "show the durability traffic each policy generates)\n\n");

  PrintTableHeader("E14c: recovery replay time vs. log length",
                   {"records written", "replayed", "segments", "replay wall",
                    "us/record", "versions restored"});
  for (uint64_t n : {1000, 5000, 10000, 20000, 40000}) {
    RecoveryCell(n);
  }
  std::printf("(expected linear: us/record roughly flat as the log grows)\n\n");
  return 0;
}

// E1 — Table: evaluation configuration and YCSB workload definitions.
//
// Mirrors the paper's setup tables: the cluster parameters used across
// E2-E10 and the YCSB workload mixes driven against every system.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

int main() {
  PrintTableHeader("E1a: cluster configuration (simulated)",
                   {"parameter", "value"});
  PrintTableRow({"servers per DC", "12 (E4 sweeps 8-32)"});
  PrintTableRow({"chain length R", "3"});
  PrintTableRow({"k-stability k", "2"});
  PrintTableRow({"virtual nodes", "16 per server"});
  PrintTableRow({"intra-DC RTT", "~0.2 ms (100us +-20us one-way)"});
  PrintTableRow({"WAN one-way", "80 ms (E7 sweeps 40-120)"});
  PrintTableRow({"server cost", "10us + 0.2us/B in + 0.2us/B out"});
  PrintTableRow({"clients", "96 closed-loop (E2-E3)"});
  PrintTableRow({"records", "1000 x 1 KiB"});

  PrintTableHeader("E1b: YCSB workloads", {"workload", "reads", "updates", "inserts", "dist"});
  PrintTableRow({"A (update-heavy)", "50%", "50%", "-", "zipfian(0.99)"});
  PrintTableRow({"B (read-heavy)", "95%", "5%", "-", "zipfian(0.99)"});
  PrintTableRow({"C (read-only)", "100%", "-", "-", "zipfian(0.99)"});
  PrintTableRow({"D (read-latest)", "95%", "-", "5%", "latest"});

  PrintTableHeader("E1c: systems under test", {"system", "consistency", "reads served by"});
  PrintTableRow({"CHAINREACTION", "causal+", "chain prefix (client metadata)"});
  PrintTableRow({"CRAQ", "linearizable", "any node + tail version query"});
  PrintTableRow({"CR(FAWN-KV)", "linearizable", "tail only"});
  PrintTableRow({"EVENTUAL-R1W1", "eventual", "any single replica"});
  PrintTableRow({"QUORUM", "per-key quorum", "majority of replicas"});
  std::printf("\n");
  return 0;
}

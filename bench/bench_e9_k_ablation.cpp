// E9 — Ablation: the k-stability knob (ack after the first k of R=5 nodes),
// measured at moderate load (15 ms client think time) so queueing does not
// swamp the per-hop ack cost.
//
// Expected shape: write latency grows with k (each increment adds one
// value-sized chain hop before the ack) up to k=R, which equals classic
// CR's full-chain ack; durability of acked writes grows with k (tolerates
// k-1 crashes); reads of stable data are unaffected.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

int main() {
  PrintTableHeader("E9: k-stability ablation, R=5, YCSB-A, 15ms think time",
                   {"k", "ops/s", "wr-mean", "wr-p99", "rd-mean", "crash tolerance"});
  for (uint32_t k = 1; k <= 5; ++k) {
    CellOptions cell;
    cell.system = SystemKind::kChainReaction;
    cell.replication = 5;
    cell.k_stability = k;
    cell.think_time = 15 * kMillisecond;
    cell.spec = WorkloadSpec::A(1000, 1024);
    CellResult result = RunCell(cell);
    const Histogram& w = result.run.stats.write_latency;
    const Histogram& r = result.run.stats.read_latency;
    PrintTableRow({FmtU(k), Fmt("%.0f", result.run.throughput_ops_sec),
                   Fmt("%.0fus", w.Mean()), FormatMicros(w.P99()), Fmt("%.0fus", r.Mean()),
                   FmtU(k - 1) + " crashes"});
    std::fflush(stdout);
  }
  std::printf("(k=R reproduces classic CR write acks; k=1 acks at the head)\n\n");
  return 0;
}

// E15 — Telemetry overhead: what observability costs on the hot path.
//
// Part 1 microbenchmarks the two instruments that sit on every request:
// LatencyMetric::Record (lock-free atomic bucket counters) and
// FlightRecorder::Emit (seqlock ring slot claim), single-threaded and with
// 4 concurrent writers. Expected shape: Record stays in the tens of
// nanoseconds and scales near-linearly with writers — the mutex it replaced
// serialized them.
//
// Part 2 runs the same simulated YCSB-B cell under three tracing policies:
//   off       no put is traced
//   sampled   head sampling of ~1/128 puts (the recommended default)
//   tail      capture-all tail sampling, slow puts retained (slow_trace_us)
// and reports host wall-clock per cell next to the simulated throughput.
// The acceptance bar from the issue: `sampled` within 3% wall time of
// `off`. `tail` pays for a trace context on every put message, so its wire
// bytes and wall time are visibly higher — that mode is for debugging
// sessions, not steady state.
// Part 3 measures the full *assembled tracing* plane at the recommended
// 1/64 sampling: the traced cell's SIMULATED throughput (trace contexts cost
// real wire bytes under the service model, so the delta is deterministic)
// plus post-run TraceAssembler critical-path derivation. `--smoke` runs only
// this part and gates overhead <= 5% — the release-bench CI step.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/assembly.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"

using namespace chainreaction;

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Part 1: per-call cost of the hot-path instruments.
void InstrumentCell(const char* name, uint32_t threads, uint64_t per_thread,
                    void (*body)(uint64_t, uint64_t)) {
  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  const int64_t t0 = NowUs();
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      body(t, per_thread);
    });
  }
  while (ready.load() < threads) {
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const int64_t us = NowUs() - t0;
  const double total = static_cast<double>(threads) * static_cast<double>(per_thread);
  std::printf("  %-24s %u thread(s)  %8.1f ns/op  (%.0f ops in %lld us)\n", name, threads,
              1e3 * static_cast<double>(us) / total, total, static_cast<long long>(us));
}

MetricsRegistry g_registry;
LatencyMetric* g_lat = nullptr;
FlightRecorder g_recorder;

void RecordBody(uint64_t tid, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    g_lat->Record(static_cast<int64_t>((tid * 7 + i) % 100000));
  }
}

void EmitBody(uint64_t tid, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    g_recorder.Emit(EventKind::kEpochChange, static_cast<int64_t>(i),
                    static_cast<int64_t>(tid), static_cast<int64_t>(i));
  }
}

// Part 2: one simulated YCSB-B cell under a tracing policy.
struct PolicyRow {
  const char* name;
  uint32_t trace_every;
  double trace_prob;
  int64_t slow_trace_us;
};

void PolicyCell(const PolicyRow& row) {
  CellOptions cell;
  cell.spec = WorkloadSpec::B(2000, 256);
  cell.servers = 8;
  cell.clients = 32;
  cell.measure = 500 * kMillisecond;
  cell.trace_sample_every = row.trace_every;
  cell.trace_probability = row.trace_prob;
  cell.slow_trace_us = row.slow_trace_us;

  const int64_t t0 = NowUs();
  CellResult r = RunCell(cell);
  const int64_t wall_us = NowUs() - t0;
  std::printf("  %-8s %8.0f ops/s sim   wall=%6.1f ms   wire=%llu B   traces=%zu retained=%zu\n",
              row.name, r.run.throughput_ops_sec, static_cast<double>(wall_us) / 1e3,
              static_cast<unsigned long long>(r.cluster->net()->bytes_sent()),
              r.cluster->traces()->size(), r.cluster->traces()->retained_count());
}

// Part 3: the whole assembled-tracing plane vs. tracing off, same cell.
struct AssembledOutcome {
  double ops_sec = 0;
  size_t assembled = 0;
  size_t complete = 0;
  double coverage = 0;
};

AssembledOutcome AssembledCell(uint32_t trace_every) {
  CellOptions cell;
  cell.spec = WorkloadSpec::B(2000, 256);
  cell.servers = 8;
  cell.clients = 32;
  cell.measure = 500 * kMillisecond;
  cell.trace_sample_every = trace_every;

  CellResult r = RunCell(cell);
  AssembledOutcome out;
  out.ops_sec = r.run.throughput_ops_sec;
  if (trace_every > 0) {
    TraceAssembler assembler;
    assembler.MergeFrom(*r.cluster->traces());
    const std::vector<CriticalPath> cps = assembler.PublishAggregates(r.cluster->metrics());
    out.assembled = cps.size();
    for (const CriticalPath& cp : cps) {
      out.complete += cp.complete ? 1 : 0;
      out.coverage += cp.coverage;
    }
    if (!cps.empty()) {
      out.coverage /= static_cast<double>(cps.size());
    }
  }
  return out;
}

// Runs the overhead gate. Returns 0 iff assembled tracing at the default
// 1/64 sampling costs <= 5% simulated throughput and paths assemble.
int AssembledOverheadGate() {
  std::printf("part 3 — assembled tracing (1/64 sampling + critical-path assembly)\n");
  const AssembledOutcome off = AssembledCell(0);
  const AssembledOutcome traced = AssembledCell(64);
  const double overhead_pct =
      off.ops_sec > 0 ? 100.0 * (1.0 - traced.ops_sec / off.ops_sec) : 0;
  std::printf("  off     %8.0f ops/s sim\n", off.ops_sec);
  std::printf("  traced  %8.0f ops/s sim   assembled=%zu complete=%zu coverage=%.2f\n",
              traced.ops_sec, traced.assembled, traced.complete, traced.coverage);
  std::printf("  overhead %.2f%% (gate: <= 5%%)\n", overhead_pct);
  if (traced.assembled == 0 || traced.complete == 0) {
    std::fprintf(stderr, "smoke FAILED: no critical paths assembled\n");
    return 1;
  }
  if (overhead_pct > 5.0) {
    std::fprintf(stderr, "smoke FAILED: assembled tracing costs %.2f%% > 5%%\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("== E15: telemetry overhead ==\n");
  if (smoke) {
    const int rc = AssembledOverheadGate();
    if (rc == 0) {
      std::printf("smoke OK\n");
    }
    return rc;
  }

  std::printf("part 1 — hot-path instruments\n");
  g_lat = g_registry.GetLatency("bench_latency", {{"bench", "e15"}});
  constexpr uint64_t kOps = 2'000'000;
  InstrumentCell("LatencyMetric::Record", 1, kOps, RecordBody);
  InstrumentCell("LatencyMetric::Record", 4, kOps, RecordBody);
  InstrumentCell("FlightRecorder::Emit", 1, kOps, EmitBody);
  InstrumentCell("FlightRecorder::Emit", 4, kOps, EmitBody);

  std::printf("part 2 — tracing policy vs. cell cost (YCSB-B, 8 servers, 32 clients)\n");
  const PolicyRow rows[] = {
      {"off", 0, 0.0, 0},
      {"sampled", 128, 0.0, 0},
      {"tail", 0, 0.0, 2000},
  };
  for (const PolicyRow& row : rows) {
    PolicyCell(row);
  }
  std::printf("note: 'sampled' should sit within ~3%% wall time of 'off'; 'tail' traces\n"
              "every put (context bytes on the wire) and is a debugging mode.\n");

  return AssembledOverheadGate();
}

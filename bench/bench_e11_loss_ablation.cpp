// E11 — Extension ablation (not in the paper): throughput and correctness
// overhead of the reliability machinery under message loss.
//
// The paper assumes reliable FIFO channels; this implementation adds client
// retries, head anti-entropy, acked geo notifications, and inter-DC
// retransmission (DESIGN.md §3.6). This ablation measures what loss costs:
// throughput degrades gracefully with the drop rate while the causal+
// checker stays clean and all replicas converge.
#include <cstdio>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void Row(double drop) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 12;
  opts.clients_per_dc = 48;
  opts.seed = 7;
  opts.net.drop_probability = drop;
  opts.client_timeout = 50 * kMillisecond;
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(500, 128);
  run.warmup = 300 * kMillisecond;
  run.measure = 1500 * kMillisecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  uint64_t retries = 0;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    retries += cluster.crx_client(i)->retries();
  }
  std::string diag;
  const bool converged = cluster.CheckConvergence(&diag);
  PrintTableRow({Fmt("%.1f%%", drop * 100), Fmt("%.0f", result.throughput_ops_sec),
                 FmtU(retries), FmtU(result.checker_violations),
                 converged ? "yes" : "NO"});
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintTableHeader("E11: ChainReaction under message loss (YCSB-A, 12 servers)",
                   {"drop rate", "ops/s", "client retries", "causal violations",
                    "converged"});
  Row(0.0);
  Row(0.005);
  Row(0.01);
  Row(0.02);
  Row(0.05);
  std::printf("(retries/anti-entropy/retransmission keep the store live and causal+;\n"
              " throughput degrades with timeout-driven retries, not with unsafety)\n\n");
  return 0;
}

// E13 — Extension: cost of causally consistent multi-key read transactions.
//
// A writer keeps cross-key dependencies churning while a reader issues
// MultiGet snapshots of growing key sets. Reports snapshot latency, the
// fraction needing a second round, and the comparison against naive
// parallel gets (which give no snapshot guarantee).
#include <cstdio>
#include <functional>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void Row(size_t key_count) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 12;
  opts.clients_per_dc = 3;
  opts.seed = 7;
  opts.net.intra_site = LinkModel{200, 4000};  // jitter spreads the round-one reads
  Cluster cluster(opts);

  std::vector<Key> keys;
  for (size_t i = 0; i < key_count; ++i) {
    keys.push_back("txn-" + std::to_string(i));
  }

  // Writer: cycle through the keys, each write depending on the previous
  // key read — a rolling dependency chain across the whole set.
  ChainReactionClient* writer = cluster.crx_client(0);
  int writes_left = 2000;
  size_t widx = 0;
  std::function<void()> write_loop = [&]() {
    if (writes_left-- <= 0) {
      return;
    }
    const Key& key = keys[widx];
    widx = (widx + 1) % keys.size();
    writer->Get(keys[widx], [&, key](const auto&) {
      writer->Put(key, "v" + std::to_string(writes_left), [&](const auto&) { write_loop(); });
    });
  };
  write_loop();

  ChainReactionClient* reader = cluster.crx_client(1);
  Histogram latency;
  int snapshots = 0;
  std::function<void()> read_loop = [&]() {
    if (snapshots >= 400) {
      return;
    }
    const Time start = cluster.sim()->Now();
    // `start` by value: the enclosing frame is gone when the callback runs.
    reader->MultiGet(keys, [&, start](const ChainReactionClient::MultiGetResult&) {
      latency.Record(cluster.sim()->Now() - start);
      snapshots++;
      read_loop();
    });
  };
  read_loop();

  // Baseline: naive parallel gets of the same keys from another session.
  ChainReactionClient* naive = cluster.crx_client(2);
  Histogram naive_latency;
  int naive_rounds = 0;
  std::function<void()> naive_loop = [&]() {
    if (naive_rounds >= 400) {
      return;
    }
    const Time start = cluster.sim()->Now();
    auto remaining = std::make_shared<size_t>(keys.size());
    for (const Key& key : keys) {
      naive->Get(key, [&, start, remaining](const auto&) {
        if (--*remaining == 0) {
          naive_latency.Record(cluster.sim()->Now() - start);
          naive_rounds++;
          naive_loop();
        }
      });
    }
  };
  naive_loop();

  cluster.sim()->Run();

  const double second_frac =
      100.0 * static_cast<double>(reader->multiget_second_rounds()) /
      static_cast<double>(snapshots == 0 ? 1 : snapshots);
  PrintTableRow({FmtU(key_count), FormatMicros(static_cast<int64_t>(latency.Mean())),
                 FormatMicros(latency.P99()), Fmt("%.1f%%", second_frac),
                 FormatMicros(static_cast<int64_t>(naive_latency.Mean()))});
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintTableHeader("E13: multi-get snapshot cost under dependency churn",
                   {"keys", "mget mean", "mget p99", "2nd rounds", "naive mean"});
  Row(2);
  Row(4);
  Row(8);
  Row(16);
  std::printf(
      "(snapshot reads cost the same as naive parallel gets: the write gating makes\n"
      " round one consistent almost always, so second rounds — one extra read RTT for\n"
      " the stale keys — stay rare even under dependency churn; multiget_test.cpp\n"
      " forces the interleaving that triggers them)\n\n");
  return 0;
}

// E7 — Figure: remote-update visibility and Global-Write-Stable time vs
// WAN latency (2 DCs).
//
// Paper shape: remote visibility tracks one WAN crossing plus local chain
// stabilization; Global-Write-Stable tracks a full WAN round trip. Client
// write latency stays flat (local k-stability) across all WAN settings.
#include <cstdio>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void Row(Duration wan_one_way) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 8;
  opts.num_dcs = 2;
  opts.net.default_inter_site = LinkModel{wan_one_way, 2 * kMillisecond};
  opts.seed = 7;
  Cluster cluster(opts);

  // Correlate client write acks with remote visibility.
  std::unordered_map<std::string, Time> acked_at;
  Histogram visibility;
  cluster.geo(1)->on_remote_visible = [&](const Key& key, const Version& v, Time now) {
    ByteWriter w;
    Dependency{key, v}.Encode(&w);
    auto it = acked_at.find(w.data());
    if (it != acked_at.end()) {
      visibility.Record(now - it->second);
    }
  };

  Histogram write_latency;
  // Drive a write burst from DC 0.
  ChainReactionClient* writer = cluster.crx_client(0);
  int remaining = 300;
  std::function<void()> next = [&]() {
    if (remaining-- <= 0) {
      return;
    }
    const Key key = "vis-" + std::to_string(remaining);
    const Time start = cluster.sim()->Now();
    writer->Put(key, std::string(1024, 'x'), [&, key, start](const auto& r) {
      write_latency.Record(cluster.sim()->Now() - start);
      ByteWriter w;
      Dependency{key, r.version}.Encode(&w);
      acked_at[w.data()] = cluster.sim()->Now();
      next();
    });
  };
  next();
  cluster.sim()->Run();

  const Histogram& gs = cluster.geo(0)->global_stable_delay();
  PrintTableRow({Fmt("%.0fms", static_cast<double>(wan_one_way) / kMillisecond),
                 FormatMicros(static_cast<int64_t>(write_latency.Mean())),
                 FormatMicros(static_cast<int64_t>(visibility.Mean())),
                 FormatMicros(visibility.P99()),
                 FormatMicros(static_cast<int64_t>(gs.Mean())), FormatMicros(gs.P99())});
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintTableHeader("E7: visibility vs WAN latency (2 DCs, 300-write burst from DC0)",
                   {"WAN 1-way", "wr-ack mean", "visible mean", "visible p99",
                    "glob-stable", "gs-p99"});
  Row(40 * kMillisecond);
  Row(80 * kMillisecond);
  Row(120 * kMillisecond);
  std::printf("(write acks stay local; visibility ~ 1x WAN; global stability ~ 2x WAN)\n\n");
  return 0;
}

// E8 — Dependency metadata: accessed-set growth + wire cost of causality.
//
// Part 1 (paper figure): the accessed-set (nearest dependencies) grows with
// the number of *distinct* keys read since the last write and collapses to
// one entry at every write — the cost of causal tracking is bounded by
// client behaviour, not by system size or history length.
//
// Part 2 (wire cost): what that metadata costs on the network, and what the
// two compression layers buy back. Three variants of the same dep-heavy
// cell (2 DCs, uniform reads, ~16 reads per write, 16 B values — the
// regime where dependency metadata dominates frame bytes: multi-DC keeps
// every accessed entry on the wire, and the lists ride every chain hop and
// the geo-replication path):
//   v1            fixed-width legacy wire format, explicit COPS dep lists
//   v2            varint/zig-zag hot-path frames, still explicit dep lists
//   v2+watermark  varint frames + stable-watermark dependency compression
//                 (clients drop deps covered by the cluster-wide
//                 cumulative-stable watermark, DESIGN.md §14)
// Reported per variant: network bytes per client op (SimNetwork byte
// deltas over the measured window), throughput, checker violations, and
// the dependency count carried by writes (p50/p99/max) from a scripted
// read-heavy capture phase.
//
// --smoke runs small and enforces the gates (0 checker violations in every
// variant, v2+watermark spends >= 40% fewer bytes/op than v1, watermark
// writes carry fewer deps than explicit ones); exit code 1 on any failure.
// Results land in BENCH_e8.json (--out).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

using namespace chainreaction;

namespace {

int g_failures = 0;

void Gate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE GATE FAILED: %s\n", what);
    g_failures++;
  }
}

// Part 1: accessed-set growth vs reads between writes (the paper figure).
void GrowthTable(std::vector<BenchJsonRow>* rows) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);
  cluster.Preload(1024, 64);

  ChainReactionClient* client = cluster.crx_client(0);
  Rng rng(3);

  PrintTableHeader("E8a: dependency metadata carried by the next write",
                   {"reads between writes", "deps entries", "deps bytes",
                    "after-write entries"});

  for (uint32_t reads : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    // Perform `reads` reads over a key range wider than `reads` so most
    // reads touch distinct keys, then write.
    for (uint32_t i = 0; i < reads; ++i) {
      const Key key = RecordKey(rng.NextBelow(1024));
      client->Get(key, [](const auto&) {});
      cluster.sim()->Run();
    }
    const size_t entries = client->accessed_set_size();
    const size_t bytes = client->AccessedSetBytes();
    client->Put("e8-sink", "v", [](const auto&) {});
    cluster.sim()->Run();
    PrintTableRow({FmtU(reads), FmtU(entries), FmtU(bytes),
                   FmtU(client->accessed_set_size())});
    rows->push_back({"growth_r" + std::to_string(reads),
                     {{"reads_between_writes", static_cast<double>(reads)},
                      {"deps_entries", static_cast<double>(entries)},
                      {"deps_bytes", static_cast<double>(bytes)}}});
  }
  std::printf("(entries grow with distinct keys read; every write resets to 1)\n\n");
}

// One variant of the Part-2 cell. Returns bytes/op for the smoke gates.
struct WireOutcome {
  double bytes_per_op = 0;
  uint64_t violations = 0;
  int64_t dep_p50 = 0;
};

WireOutcome WireCell(const char* label, WireFormat wf, bool watermark, bool smoke,
                     std::vector<BenchJsonRow>* rows) {
  const uint64_t records = smoke ? 256 : 512;

  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = smoke ? 8 : 16;
  opts.replication = 3;
  opts.k_stability = 2;
  opts.num_dcs = 2;
  opts.seed = 7;
  opts.wire_format = wf;
  opts.dep_watermark = watermark;
  Cluster cluster(opts);

  // Preload outside the byte-accounting window, then measure everything the
  // driven ops cost (warmup 0 so stats.TotalOps() covers the whole window;
  // the post-stop drain is identical across variants).
  cluster.Preload(records, 16);
  const uint64_t bytes0 = cluster.net()->bytes_sent();

  // Dep-heavy: ~16 uniform reads per write over a small keyspace, so the
  // accessed set at each write holds many distinct entries.
  WorkloadSpec spec;
  spec.name = "dep-heavy";
  spec.read_proportion = 16.0 / 17.0;
  spec.update_proportion = 1.0 / 17.0;
  spec.distribution = Distribution::kUniform;
  spec.record_count = records;
  spec.value_size = 16;

  RunOptions run;
  run.spec = spec;
  run.warmup = 0;
  run.measure = (smoke ? 300 : 1000) * kMillisecond;
  run.attach_checker = true;
  run.preload = false;
  const RunResult result = RunWorkload(&cluster, run);

  const uint64_t ops = result.stats.TotalOps();
  const uint64_t bytes = cluster.net()->bytes_sent() - bytes0;
  const double bytes_per_op =
      ops == 0 ? 0 : static_cast<double>(bytes) / static_cast<double>(ops);

  // Scripted capture phase: 16 distinct reads then a write, recording the
  // dependency list each write actually carried (PutResult echoes it).
  Histogram dep_counts;
  ChainReactionClient* client = cluster.crx_client(0);
  Rng rng(11);
  const uint32_t rounds = smoke ? 32 : 128;
  for (uint32_t r = 0; r < rounds; ++r) {
    for (uint32_t i = 0; i < 16; ++i) {
      client->Get(RecordKey(rng.NextBelow(records)), [](const auto&) {});
      cluster.sim()->Run();
    }
    client->Put(RecordKey(rng.NextBelow(records)), "w",
                [&dep_counts](const ChainReactionClient::PutResult& res) {
                  dep_counts.Record(static_cast<int64_t>(res.deps.size()));
                });
    cluster.sim()->Run();
  }

  PrintTableRow({label, FmtU(ops), Fmt("%.1f", bytes_per_op),
                 Fmt("%.0f", result.throughput_ops_sec),
                 FmtU(result.checker_violations), FmtU(static_cast<uint64_t>(dep_counts.P50())),
                 FmtU(static_cast<uint64_t>(dep_counts.P99())), FmtU(static_cast<uint64_t>(dep_counts.max()))});

  rows->push_back({std::string("wire_") + label,
                   {{"ops", static_cast<double>(ops)},
                    {"net_bytes", static_cast<double>(bytes)},
                    {"bytes_per_op", bytes_per_op},
                    {"ops_per_sec", result.throughput_ops_sec},
                    {"checker_violations", static_cast<double>(result.checker_violations)},
                    {"dep_count_p50", static_cast<double>(dep_counts.P50())},
                    {"dep_count_p99", static_cast<double>(dep_counts.P99())},
                    {"dep_count_max", static_cast<double>(dep_counts.max())}}});

  WireOutcome out;
  out.bytes_per_op = bytes_per_op;
  out.violations = result.checker_violations;
  out.dep_p50 = dep_counts.P50();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_e8.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out file.json]\n", argv[0]);
      return 2;
    }
  }

  std::vector<BenchJsonRow> rows;
  GrowthTable(&rows);

  PrintTableHeader(
      "E8b: wire cost of causality metadata (dep-heavy cell, 16B values)",
      {"format", "ops", "bytes/op", "ops/s", "violations", "dep p50", "dep p99",
       "dep max"});
  const WireOutcome v1 = WireCell("v1", WireFormat::kV1, false, smoke, &rows);
  const WireOutcome v2 = WireCell("v2", WireFormat::kV2, false, smoke, &rows);
  const WireOutcome v2wm = WireCell("v2+watermark", WireFormat::kV2, true, smoke, &rows);

  const double v2_saving =
      v1.bytes_per_op == 0 ? 0 : 100.0 * (1.0 - v2.bytes_per_op / v1.bytes_per_op);
  const double wm_saving =
      v1.bytes_per_op == 0 ? 0 : 100.0 * (1.0 - v2wm.bytes_per_op / v1.bytes_per_op);
  std::printf(
      "(v2 varint framing saves %.1f%% bytes/op; watermark compression on top\n"
      " saves %.1f%% — stable deps never leave the client)\n\n",
      v2_saving, wm_saving);
  rows.push_back({"savings",
                  {{"v2_vs_v1_pct", v2_saving}, {"v2wm_vs_v1_pct", wm_saving}}});

  if (!WriteBenchJson(out, "bench_e8_metadata", rows)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (smoke) {
    Gate(v1.violations == 0, "v1: checker violations != 0");
    Gate(v2.violations == 0, "v2: checker violations != 0");
    Gate(v2wm.violations == 0, "v2+watermark: checker violations != 0");
    Gate(v2.bytes_per_op < v1.bytes_per_op, "v2 not smaller than v1");
    Gate(wm_saving >= 40.0, "v2+watermark saves < 40% bytes/op vs v1");
    Gate(v2wm.dep_p50 < v1.dep_p50,
         "watermark writes do not carry fewer deps than explicit ones");
    if (g_failures > 0) {
      std::fprintf(stderr, "%d smoke gate(s) failed\n", g_failures);
      return 1;
    }
  }
  return 0;
}

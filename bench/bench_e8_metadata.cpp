// E8 — Figure: client dependency-metadata size vs reads between writes.
//
// Paper shape: the accessed-set (nearest dependencies) grows with the
// number of *distinct* keys read since the last write and collapses to one
// entry at every write — the cost of causal tracking is bounded by client
// behaviour, not by system size or history length.
#include <cstdio>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "bench/bench_util.h"

using namespace chainreaction;

int main() {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  Cluster cluster(opts);
  cluster.Preload(1024, 64);

  ChainReactionClient* client = cluster.crx_client(0);
  Rng rng(3);

  PrintTableHeader("E8: dependency metadata carried by the next write",
                   {"reads between writes", "deps entries", "deps bytes",
                    "after-write entries"});

  for (uint32_t reads : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    // Perform `reads` reads over a key range wider than `reads` so most
    // reads touch distinct keys, then write.
    for (uint32_t i = 0; i < reads; ++i) {
      const Key key = RecordKey(rng.NextBelow(1024));
      client->Get(key, [](const auto&) {});
      cluster.sim()->Run();
    }
    const size_t entries = client->accessed_set_size();
    const size_t bytes = client->AccessedSetBytes();
    bool done = false;
    client->Put("e8-sink", "v", [&](const auto&) { done = true; });
    cluster.sim()->Run();
    PrintTableRow({FmtU(reads), FmtU(entries), FmtU(bytes),
                   FmtU(client->accessed_set_size())});
  }
  std::printf("(entries grow with distinct keys read; every write resets to 1)\n\n");
  return 0;
}

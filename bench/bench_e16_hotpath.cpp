// E16 — Hot-path throughput on real sockets: multi-loop runtime + batching.
//
// Unlike E1-E15 (simulated time, cost models), this experiment measures
// wall-clock throughput of the actual TCP deployment: 8 ChainReaction
// nodes in one process, 16 pipelined client sessions, loopback sockets.
// Cells:
//   baseline_1loop_per_node — the seed deployment: one single-loop runtime
//       per node, per-frame write(), every post via mutex + wake pipe
//   overhaul_1loop_batched  — consolidated runtime, coalesced writev
//       flushes, cumulative-ack windows, one loop
//   overhaul_4loops_batched — same plus 4 event loops with ring-segment
//       sharding (`kv_shell --loop-threads=4`); needs cores to win
// The headline speedup compares the baseline against the overhaul cell
// sized for the machine's core count.
// Reported: put throughput, p50/p99 completion latency, allocations per op
// (global operator-new hook), and the runtime's writev coalescing counters.
//
// A second table sweeps the loop count (`--loops 1,2,4,8` to override) on
// the batched deployment, holding everything else fixed — the scaling curve
// for "how many event loops should this box run". Each point lands in the
// JSON as loops_N.
//
// Usage: bench_e16_hotpath [--smoke] [--loops 1,2,4,8] [json_path]
//   --smoke: short cells + sanity assertions, no JSON (CI gate).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/tcp_cluster.h"
#include "src/obs/alloc_phase.h"
#include "src/obs/assembly.h"

// Allocation accounting: every global allocation in the process (all loop
// threads included) bumps one relaxed counter, plus a per-phase counter
// keyed by the allocating thread's AllocPhase stamp (decode / apply /
// encode / callback / other). Benchmarks divide the deltas by completed
// ops, which is how "allocs/op" decomposes by request-processing phase.
static std::atomic<uint64_t> g_allocs{0};
static std::atomic<uint64_t> g_phase_allocs[chainreaction::kAllocPhaseCount] = {};

static void* CountedAlloc(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_phase_allocs[static_cast<size_t>(chainreaction::g_alloc_phase)].fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace chainreaction {
namespace {

struct CellSpec {
  std::string name;
  uint32_t loop_threads = 1;
  Duration ack_batch_window = 0;
  bool per_node_runtimes = false;  // seed deployment: 1 single-loop runtime/node
  bool coalesced_io = true;        // false = pre-overhaul per-frame write()
  uint32_t trace_sample_every = 0;  // >0: sampled tracing + post-run assembly
};

struct CellOutcome {
  uint64_t ops = 0;
  uint64_t failures = 0;
  double ops_per_sec = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  double allocs_per_op = 0;
  // allocs_per_op decomposed by the allocating thread's AllocPhase stamp.
  double phase_allocs_per_op[chainreaction::kAllocPhaseCount] = {};
  double frames_per_writev = 0;

  // Assembled critical path (traced cells only): per-segment means over every
  // assembled request, plus the honesty signals the smoke gate checks.
  size_t cp_assembled = 0;
  size_t cp_complete = 0;
  size_t cp_gated = 0;             // requests with a dep-wait segment
  size_t cp_gated_attributed = 0;  // ... of those, with the blocking dep named
  double cp_encode_us = 0;
  double cp_net_us = 0;
  double cp_depwait_us = 0;
  double cp_kack_us = 0;
  double cp_stability_us = 0;
  double cp_coverage = 0;  // mean attributed-sum / e2e — 1.0 = exact
};

CellOutcome RunHotpathCell(const CellSpec& spec, Duration duration) {
  TcpCluster::Options opts;
  opts.num_nodes = 8;
  opts.loop_threads = spec.loop_threads;
  opts.num_clients = 16;
  opts.client_loop_threads = 4;
  opts.seed = 7;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  opts.config.ack_batch_window = spec.ack_batch_window;
  opts.per_node_runtimes = spec.per_node_runtimes;
  opts.coalesced_io = spec.coalesced_io;
  MetricsRegistry metrics;
  TraceCollector traces;
  if (spec.trace_sample_every > 0) {
    opts.config.trace_sample_every = spec.trace_sample_every;
    opts.metrics = &metrics;
    opts.traces = &traces;
  }
  TcpCluster cluster(opts);

  TcpCluster::LoadOptions load;
  load.duration = duration;
  load.value_size = 128;
  load.key_space = 4096;
  load.get_fraction = 0.0;  // pure puts: the chain hot path
  load.pipeline = 8;

  const uint64_t allocs_before = g_allocs.load();
  uint64_t phase_before[kAllocPhaseCount];
  for (size_t p = 0; p < kAllocPhaseCount; ++p) {
    phase_before[p] = g_phase_allocs[p].load();
  }
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  const uint64_t allocs = g_allocs.load() - allocs_before;

  CellOutcome out;
  out.ops = result.ops;
  out.failures = result.failures;
  out.ops_per_sec = result.ops_per_sec;
  out.p50_us = result.latency_us.P50();
  out.p99_us = result.latency_us.P99();
  out.allocs_per_op = result.ops > 0 ? static_cast<double>(allocs) / result.ops : 0;
  if (result.ops > 0) {
    for (size_t p = 0; p < kAllocPhaseCount; ++p) {
      out.phase_allocs_per_op[p] =
          static_cast<double>(g_phase_allocs[p].load() - phase_before[p]) / result.ops;
    }
  }
  const uint64_t calls = cluster.server_writev_calls();
  out.frames_per_writev =
      calls > 0 ? static_cast<double>(cluster.server_writev_frames()) / calls : 0;

  if (spec.trace_sample_every > 0) {
    TraceAssembler assembler;
    assembler.MergeFrom(traces);
    const std::vector<CriticalPath> cps = assembler.PublishAggregates(&metrics);
    out.cp_assembled = cps.size();
    double stab_seen = 0;
    for (const CriticalPath& cp : cps) {
      out.cp_complete += cp.complete ? 1 : 0;
      if (cp.depwait_us > 0) {
        ++out.cp_gated;
        out.cp_gated_attributed += cp.blocked_by.empty() ? 0 : 1;
      }
      out.cp_encode_us += static_cast<double>(cp.encode_us);
      out.cp_net_us += static_cast<double>(cp.net_us);
      out.cp_depwait_us += static_cast<double>(cp.depwait_us);
      out.cp_kack_us += static_cast<double>(cp.kack_us);
      if (cp.stability_us >= 0) {
        out.cp_stability_us += static_cast<double>(cp.stability_us);
        stab_seen += 1;
      }
      out.cp_coverage += cp.coverage;
    }
    if (!cps.empty()) {
      const double n = static_cast<double>(cps.size());
      out.cp_encode_us /= n;
      out.cp_net_us /= n;
      out.cp_depwait_us /= n;
      out.cp_kack_us /= n;
      out.cp_coverage /= n;
      out.cp_stability_us = stab_seen > 0 ? out.cp_stability_us / stab_seen : 0;
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_e16.json";
  std::vector<uint32_t> sweep_loops = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--loops") == 0 && i + 1 < argc) {
      sweep_loops.clear();
      std::string list = argv[++i];
      for (size_t pos = 0; pos < list.size();) {
        const size_t comma = std::min(list.find(',', pos), list.size());
        sweep_loops.push_back(
            static_cast<uint32_t>(std::strtoul(list.substr(pos, comma - pos).c_str(), nullptr, 10)));
        pos = comma + 1;
      }
    } else {
      json_path = argv[i];
    }
  }
  const Duration duration = smoke ? 300 * kMillisecond : 3 * kSecond;

  // Baseline reproduces the seed deployment exactly: one single-loop
  // runtime per node (kv_shell's old topology), per-frame write(), every
  // post through the mutex + wake pipe. The overhaul cell is what
  // `kv_shell --loop-threads=4` now runs: all nodes consolidated into one
  // 4-loop runtime with ring-segment affinity, coalesced writev flushes,
  // and cumulative-ack windows. The middle cell isolates consolidation
  // from loop-count scaling (which needs cores to show up).
  // The traced cell repeats overhaul_1loop_batched with 1/64 end-to-end
  // sampling + post-run assembly — its throughput delta vs. the untraced
  // twin is the cost of the whole tracing plane.
  const CellSpec cells[] = {
      {"baseline_1loop_per_node", 1, 0, /*per_node=*/true, /*coalesced=*/false},
      {"overhaul_1loop_batched", 1, 100, false, true},
      {"overhaul_4loops_batched", 4, 100 /*us*/, false, true},
      {"overhaul_1loop_traced", 1, 100, false, true, /*trace 1/N=*/64},
  };
  // Loop-count scaling needs cores; the headline number compares the
  // baseline against the overhaul cell sized for this machine.
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t headline = hw >= 2 ? 2 : 1;

  PrintTableHeader("E16: TCP hot path, 8 nodes, 16 pipelined sessions, pure puts",
                   {"cell", "ops/s", "p50", "p99", "alloc/op", "frames/writev"});
  std::vector<CellOutcome> outcomes;
  for (const CellSpec& spec : cells) {
    const CellOutcome out = RunHotpathCell(spec, duration);
    outcomes.push_back(out);
    PrintTableRow({spec.name, Fmt("%.0f", out.ops_per_sec), FormatMicros(out.p50_us),
                   FormatMicros(out.p99_us), Fmt("%.1f", out.allocs_per_op),
                   Fmt("%.2f", out.frames_per_writev)});
  }

  // Where the remaining allocations live (per-phase operator-new buckets).
  PrintTableHeader("E16a: allocs/op by request phase",
                   {"cell", "decode", "apply", "encode", "callback", "other"});
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const auto& pa = outcomes[i].phase_allocs_per_op;
    PrintTableRow({cells[i].name,
                   Fmt("%.1f", pa[static_cast<size_t>(AllocPhase::kDecode)]),
                   Fmt("%.1f", pa[static_cast<size_t>(AllocPhase::kApply)]),
                   Fmt("%.1f", pa[static_cast<size_t>(AllocPhase::kEncode)]),
                   Fmt("%.1f", pa[static_cast<size_t>(AllocPhase::kCallback)]),
                   Fmt("%.1f", pa[static_cast<size_t>(AllocPhase::kOther)])});
  }
  std::printf("\n");
  const double speedup =
      outcomes[0].ops_per_sec > 0 ? outcomes[headline].ops_per_sec / outcomes[0].ops_per_sec
                                  : 0;
  std::printf("\nput throughput speedup (%s vs baseline, %u hw threads): %.2fx\n\n",
              cells[headline].name.c_str(), hw, speedup);

  // Critical-path table for the traced cell: where a sampled put's latency
  // actually went, and the coverage/attribution honesty signals.
  const CellOutcome& tr = outcomes[3];
  // The overhead number compares twin cells that ran minutes apart, so a
  // scheduler hiccup in either window reads as tracing cost. Re-run the
  // pair back-to-back a few times and compare best-of: repeatable work
  // (the tracing plane) survives best-of, transient load does not.
  double best_untraced = outcomes[1].ops_per_sec;
  double best_traced = tr.ops_per_sec;
  const int overhead_trials = smoke ? 0 : 2;
  for (int t = 0; t < overhead_trials; ++t) {
    best_untraced = std::max(best_untraced, RunHotpathCell(cells[1], duration).ops_per_sec);
    best_traced = std::max(best_traced, RunHotpathCell(cells[3], duration).ops_per_sec);
  }
  const double tracing_overhead_pct =
      best_untraced > 0 ? 100.0 * (1.0 - best_traced / best_untraced) : 0;
  PrintTableHeader("E16c: assembled critical path, 1/64 sampling (mean us/request)",
                   {"assembled", "complete", "gated", "encode", "net", "depwait", "kack",
                    "stability", "coverage"});
  PrintTableRow({FmtU(tr.cp_assembled), FmtU(tr.cp_complete), FmtU(tr.cp_gated),
                 Fmt("%.0f", tr.cp_encode_us), Fmt("%.0f", tr.cp_net_us),
                 Fmt("%.0f", tr.cp_depwait_us), Fmt("%.0f", tr.cp_kack_us),
                 Fmt("%.0f", tr.cp_stability_us), Fmt("%.2f", tr.cp_coverage)});
  std::printf("\ntracing overhead vs untraced twin: %.1f%%; dep-gated with blocking dep "
              "named: %zu/%zu\n\n",
              tracing_overhead_pct, tr.cp_gated_attributed, tr.cp_gated);

  if (smoke) {
    // CI sanity gate: every cell must complete real work without failures.
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ops == 0 || outcomes[i].failures > 0) {
        std::fprintf(stderr, "smoke FAILED: cell %zu ops=%llu failures=%llu\n", i,
                     static_cast<unsigned long long>(outcomes[i].ops),
                     static_cast<unsigned long long>(outcomes[i].failures));
        return 1;
      }
    }
    // Zero-copy regression gate: the overhaul cell's allocation budget.
    // The value path (socket buffer -> store) copies once, the down-chain
    // frame is encoded once, and per-request scratch is arena/small-vector
    // backed — a ceiling of 30 allocs/op holds all of that in place.
    constexpr double kMaxAllocsPerOp = 30.0;
    if (outcomes[1].allocs_per_op > kMaxAllocsPerOp) {
      std::fprintf(stderr, "smoke FAILED: %s allocs/op %.1f > %.0f\n", cells[1].name.c_str(),
                   outcomes[1].allocs_per_op, kMaxAllocsPerOp);
      return 1;
    }
    // Trace-assembly gates: paths must assemble, the segment sum must be
    // within 10% of the measured e2e latency (coverage >= 0.9), and every
    // dep-wait segment must name the dependency that blocked it.
    if (tr.cp_assembled == 0 || tr.cp_complete == 0) {
      std::fprintf(stderr, "smoke FAILED: no critical paths assembled\n");
      return 1;
    }
    if (tr.cp_coverage < 0.9) {
      std::fprintf(stderr, "smoke FAILED: cp coverage %.2f < 0.9\n", tr.cp_coverage);
      return 1;
    }
    if (tr.cp_gated_attributed < tr.cp_gated) {
      std::fprintf(stderr, "smoke FAILED: %zu/%zu dep-gated paths lack blocked_by\n",
                   tr.cp_gated - tr.cp_gated_attributed, tr.cp_gated);
      return 1;
    }
    std::printf("smoke OK\n");
    return 0;
  }

  // Loop-count scaling sweep: the batched deployment at each loop count.
  // Points past the core count show the flattening (or inversion) that says
  // "stop adding loops here".
  PrintTableHeader("E16b: loop-count scaling, batched deployment",
                   {"loops", "ops/s", "p50", "p99", "vs 1 loop"});
  std::vector<CellOutcome> sweep;
  for (const uint32_t loops : sweep_loops) {
    const CellSpec spec{"loops_" + std::to_string(loops), loops, 100, false, true};
    const CellOutcome out = RunHotpathCell(spec, duration);
    sweep.push_back(out);
    const double rel =
        sweep[0].ops_per_sec > 0 ? out.ops_per_sec / sweep[0].ops_per_sec : 0;
    PrintTableRow({FmtU(loops), Fmt("%.0f", out.ops_per_sec), FormatMicros(out.p50_us),
                   FormatMicros(out.p99_us), Fmt("%.2fx", rel)});
  }
  std::printf("\n");

  std::vector<BenchJsonRow> rows;
  for (size_t i = 0; i < sweep.size(); ++i) {
    rows.push_back(BenchJsonRow{"loops_" + std::to_string(sweep_loops[i]),
                                {{"loop_threads", static_cast<double>(sweep_loops[i])},
                                 {"ops_per_sec", sweep[i].ops_per_sec},
                                 {"p50_us", static_cast<double>(sweep[i].p50_us)},
                                 {"p99_us", static_cast<double>(sweep[i].p99_us)},
                                 {"speedup_vs_1loop",
                                  sweep[0].ops_per_sec > 0
                                      ? sweep[i].ops_per_sec / sweep[0].ops_per_sec
                                      : 0}}});
  }
  for (size_t i = 0; i < outcomes.size(); ++i) {
    BenchJsonRow row{cells[i].name,
                     {{"loop_threads", static_cast<double>(cells[i].loop_threads)},
                      {"ops_per_sec", outcomes[i].ops_per_sec},
                      {"p50_us", static_cast<double>(outcomes[i].p50_us)},
                      {"p99_us", static_cast<double>(outcomes[i].p99_us)},
                      {"allocs_per_op", outcomes[i].allocs_per_op},
                      {"frames_per_writev", outcomes[i].frames_per_writev}}};
    for (size_t p = 0; p < kAllocPhaseCount; ++p) {
      row.values.push_back({std::string("allocs_per_op_") +
                                AllocPhaseName(static_cast<AllocPhase>(p)),
                            outcomes[i].phase_allocs_per_op[p]});
    }
    if (cells[i].trace_sample_every > 0) {
      row.values.push_back({"cp_assembled", static_cast<double>(outcomes[i].cp_assembled)});
      row.values.push_back({"cp_encode_us", outcomes[i].cp_encode_us});
      row.values.push_back({"cp_net_us", outcomes[i].cp_net_us});
      row.values.push_back({"cp_depwait_us", outcomes[i].cp_depwait_us});
      row.values.push_back({"cp_kack_us", outcomes[i].cp_kack_us});
      row.values.push_back({"cp_stability_us", outcomes[i].cp_stability_us});
      row.values.push_back({"cp_coverage", outcomes[i].cp_coverage});
      row.values.push_back({"tracing_overhead_pct", tracing_overhead_pct});
    }
    rows.push_back(row);
  }
  rows.push_back(BenchJsonRow{
      "summary", {{"put_speedup", speedup}, {"hw_threads", static_cast<double>(hw)}}});
  if (WriteBenchJson(json_path, "e16", rows)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace chainreaction

int main(int argc, char** argv) { return chainreaction::Main(argc, argv); }

// E18 — Elastic membership: planned join/drain under live load.
//
// One simulated ChainReaction cell runs a closed-loop YCSB-A workload with
// the causal+ checker attached while the migration coordinator executes a
// planned topology sequence:
//
//   steady  —  baseline window, fixed 8-node ring
//   join    —  a 9th node boots, its key ranges stream in, the epoch flips
//   drain   —  a node's ranges stream away, then it leaves the ring
//   post    —  second steady window on the final 8-node ring
//
// Each phase reports ops, throughput, and read/write p99. The elasticity
// claim is that a *planned* reconfiguration is not a failure: clients keep
// completing operations throughout, causal+ never breaks, and tail latency
// during a migration stays within 3x of the steady-state tail (the
// migration streams in the background and the cutover barrier is brief).
//
// --smoke runs the same phases shorter and enforces the gates (0 checker
// violations, both migrations commit, migrate p99 <= 3x steady p99, all
// records readable, replicas converge); exit 1 on any failure. Results land
// in BENCH_e18.json (--out).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/checker/causal_checker.h"
#include "src/obs/assembly.h"
#include "src/ycsb/driver.h"

using namespace chainreaction;

namespace {

int g_failures = 0;

void Gate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE GATE FAILED: %s\n", what);
    g_failures++;
  }
}

struct PhaseStats {
  std::string name;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  int64_t write_p99 = 0;
  int64_t read_p99 = 0;
  // The tail the 3x gate is judged on.
  int64_t p99() const { return std::max(write_p99, read_p99); }
};

PhaseStats DrainWindow(const std::string& name, Cluster* cluster, StatsCollector* stats) {
  PhaseStats out;
  out.name = name;
  out.ops = stats->TotalOps();
  out.ops_per_sec = stats->ThroughputOpsPerSec(cluster->sim()->Now());
  out.write_p99 = stats->write_latency.P99();
  out.read_p99 = stats->read_latency.P99();
  stats->Reset(cluster->sim()->Now());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_e18.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out file.json]\n", argv[0]);
      return 2;
    }
  }

  const int records = smoke ? 150 : 400;
  const Duration steady_window = (smoke ? 700 : 2000) * kMillisecond;
  const Duration settle = 300 * kMillisecond;

  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = smoke ? 4 : 8;
  opts.heartbeat_interval = 50 * kMillisecond;
  opts.seed = 18;
  // Sampled end-to-end tracing throughout: puts applying on a migration
  // source while it mirrors carry a mig_phase hop, so assembled critical
  // paths can say which requests overlapped a live reconfiguration.
  opts.trace_sample_every = 32;
  Cluster cluster(opts);
  cluster.Preload(records, 64);

  // Closed-loop YCSB-A drivers with the causal+ checker on every completion.
  StatsCollector stats;
  stats.Reset(cluster.sim()->Now());
  uint64_t insert_counter = records;
  CausalChecker checker;
  std::vector<std::unique_ptr<WorkloadDriver>> drivers;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    auto driver = std::make_unique<WorkloadDriver>(cluster.client(i), cluster.client_env(i),
                                                   WorkloadSpec::A(records, 64), 1800 + i,
                                                   &insert_counter, &stats);
    const uint32_t session = cluster.client(i)->address();
    driver->on_write_complete = [&checker, session](const Key& key, const KvPutResult& r) {
      checker.RecordWrite(session, key, r.version, r.deps);
    };
    driver->on_read_complete = [&checker, session](const Key& key, const KvGetResult& r) {
      checker.RecordRead(session, key, r.found, r.version);
    };
    driver->Start();
    drivers.push_back(std::move(driver));
  }

  std::vector<PhaseStats> phases;

  // Phase 1: steady baseline.
  cluster.sim()->RunUntil(cluster.sim()->Now() + steady_window);
  phases.push_back(DrainWindow("steady", &cluster, &stats));

  // Phase 2: join a 9th node under load.
  uint32_t join_idx = 0;
  const uint64_t join_id = cluster.AddJoiningServer(0, &join_idx);
  const bool join_idle = join_id != 0 && cluster.WaitMigrationIdle(0);
  cluster.sim()->RunUntil(cluster.sim()->Now() + settle);
  phases.push_back(DrainWindow("join", &cluster, &stats));
  const uint64_t join_entries = cluster.crx_node(0, join_idx)->mig_entries_in();

  // Phase 3: drain one of the original nodes under load.
  const uint64_t drain_id = cluster.DrainServer(0, 2);
  const bool drain_idle = drain_id != 0 && cluster.WaitMigrationIdle(0);
  cluster.sim()->RunUntil(cluster.sim()->Now() + settle);
  phases.push_back(DrainWindow("drain", &cluster, &stats));

  // Phase 4: steady on the final topology.
  cluster.sim()->RunUntil(cluster.sim()->Now() + steady_window);
  phases.push_back(DrainWindow("post", &cluster, &stats));

  for (auto& d : drivers) {
    d->Stop();
  }
  cluster.sim()->RunUntil(cluster.sim()->Now() + 1 * kSecond);

  const uint64_t completed = cluster.coordinator(0)->completed();
  const uint64_t aborted = cluster.coordinator(0)->aborted();
  std::string diag;
  const bool converged = cluster.CheckConvergence(&diag);
  uint64_t unreadable = 0;
  for (int i = 0; i < records; ++i) {
    bool found = false;
    cluster.crx_client(0)->Get(RecordKey(i),
                               [&](const ChainReactionClient::GetResult& r) { found = r.found; });
    cluster.sim()->RunUntil(cluster.sim()->Now() + 50 * kMillisecond);
    if (!found) {
      unreadable++;
    }
  }

  PrintTableHeader("E18: YCSB-A across a planned join + drain (8 -> 9 -> 8 nodes)",
                   {"phase", "ops", "ops/s", "write p99", "read p99", "p99 vs steady"});
  const double steady_p99 = static_cast<double>(std::max<int64_t>(1, phases[0].p99()));
  std::vector<BenchJsonRow> rows;
  for (const PhaseStats& p : phases) {
    const double rel = static_cast<double>(p.p99()) / steady_p99;
    PrintTableRow({p.name, FmtU(p.ops), Fmt("%.0f", p.ops_per_sec),
                   FmtU(static_cast<uint64_t>(p.write_p99)) + "us",
                   FmtU(static_cast<uint64_t>(p.read_p99)) + "us", Fmt("%.2fx", rel)});
    rows.push_back({"phase_" + p.name,
                    {{"ops", static_cast<double>(p.ops)},
                     {"ops_per_sec", p.ops_per_sec},
                     {"write_p99_us", static_cast<double>(p.write_p99)},
                     {"read_p99_us", static_cast<double>(p.read_p99)},
                     {"p99_vs_steady", rel}}});
  }
  std::printf(
      "(join streamed %llu entries to the newcomer before its epoch flipped; "
      "migrations committed=%llu aborted=%llu)\n",
      static_cast<unsigned long long>(join_entries),
      static_cast<unsigned long long>(completed), static_cast<unsigned long long>(aborted));
  std::printf("checker violations=%llu converged=%s unreadable=%llu\n\n",
              static_cast<unsigned long long>(checker.violations()), converged ? "yes" : "NO",
              static_cast<unsigned long long>(unreadable));
  if (!converged) {
    std::printf("  divergence: %s\n", diag.c_str());
  }
  if (checker.violations() > 0 && !checker.diagnostics().empty()) {
    std::printf("  first violation: %s\n", checker.diagnostics()[0].c_str());
  }

  // Assembled critical paths across the whole run, including how many
  // sampled requests overlapped a live migration at the head.
  TraceAssembler assembler;
  assembler.MergeFrom(*cluster.traces());
  const std::vector<CriticalPath> cps = assembler.PublishAggregates(cluster.metrics());
  size_t cp_complete = 0, cp_overlap = 0;
  double cp_coverage = 0, cp_depwait = 0;
  for (const CriticalPath& cp : cps) {
    cp_complete += cp.complete ? 1 : 0;
    cp_overlap += cp.migration_overlap ? 1 : 0;
    cp_coverage += cp.coverage;
    cp_depwait += static_cast<double>(cp.depwait_us);
  }
  if (!cps.empty()) {
    cp_coverage /= static_cast<double>(cps.size());
    cp_depwait /= static_cast<double>(cps.size());
  }
  std::printf("critical-path %zu assembled (%zu complete, %zu overlapped a migration); "
              "coverage=%.2f mean depwait=%.0fus\n",
              cps.size(), cp_complete, cp_overlap, cp_coverage, cp_depwait);

  rows.push_back({"criticalpath",
                  {{"cp_assembled", static_cast<double>(cps.size())},
                   {"cp_complete", static_cast<double>(cp_complete)},
                   {"cp_migration_overlap", static_cast<double>(cp_overlap)},
                   {"cp_coverage", cp_coverage},
                   {"cp_depwait_us", cp_depwait}}});
  rows.push_back({"summary",
                  {{"migrations_completed", static_cast<double>(completed)},
                   {"migrations_aborted", static_cast<double>(aborted)},
                   {"join_entries_streamed", static_cast<double>(join_entries)},
                   {"checker_violations", static_cast<double>(checker.violations())},
                   {"converged", converged ? 1.0 : 0.0},
                   {"unreadable_records", static_cast<double>(unreadable)}}});

  if (!WriteBenchJson(out, "bench_e18_elastic", rows)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (smoke) {
    Gate(join_idle && drain_idle, "elastic: a migration did not reach idle");
    Gate(completed == 2 && aborted == 0, "elastic: both migrations must commit");
    Gate(join_entries > 0, "elastic: join moved no data");
    Gate(checker.violations() == 0, "elastic: causal+ violations != 0");
    Gate(converged, "elastic: replicas did not converge");
    Gate(unreadable == 0, "elastic: acked records lost across reconfiguration");
    for (size_t i = 1; i + 1 < phases.size(); ++i) {
      Gate(static_cast<double>(phases[i].p99()) <= 3.0 * steady_p99,
           "elastic: migration-phase p99 above 3x steady");
    }
    for (const PhaseStats& p : phases) {
      Gate(p.ops > 0, "elastic: a phase completed no operations");
    }
    if (g_failures > 0) {
      std::fprintf(stderr, "%d smoke gate(s) failed\n", g_failures);
      return 1;
    }
  }
  return 0;
}

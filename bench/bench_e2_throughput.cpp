// E2 — Figure: throughput of every system on YCSB workloads A-D.
//
// Paper shape: ChainReaction's distributed reads beat CRAQ (which pays tail
// version queries whenever objects are dirty) and far outrun CR (tail-only
// reads); on read-heavy workloads ChainReaction approaches the eventual
// (R1W1) store's throughput while giving causal+ guarantees; the quorum
// configuration pays fan-out on every operation.
//
// Besides the table, writes BENCH_e2.json (ops/s and read/write latency
// percentiles per cell) for the perf-trajectory diff in ROADMAP.md.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using namespace chainreaction;

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_e2.json";
  const struct {
    const char* name;
    WorkloadSpec spec;
  } workloads[] = {
      {"A", WorkloadSpec::A(1000, 1024)},
      {"B", WorkloadSpec::B(1000, 1024)},
      {"C", WorkloadSpec::C(1000, 1024)},
      {"D", WorkloadSpec::D(1000, 1024)},
  };

  std::vector<BenchJsonRow> json_rows;
  PrintTableHeader("E2: throughput (ops/s), 12 servers, 96 closed-loop clients",
                   {"system", "YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D"});
  for (SystemKind system : AllSystems()) {
    std::vector<std::string> row = {SystemKindName(system)};
    for (const auto& workload : workloads) {
      CellOptions cell;
      cell.system = system;
      cell.spec = workload.spec;
      CellResult result = RunCell(cell);
      row.push_back(Fmt("%.0f", result.run.throughput_ops_sec));
      const StatsCollector& stats = result.run.stats;
      json_rows.push_back(BenchJsonRow{
          std::string(SystemKindName(system)) + "/" + workload.name,
          {{"ops_per_sec", result.run.throughput_ops_sec},
           {"read_p50_us", static_cast<double>(stats.read_latency.P50())},
           {"read_p99_us", static_cast<double>(stats.read_latency.P99())},
           {"write_p50_us", static_cast<double>(stats.write_latency.P50())},
           {"write_p99_us", static_cast<double>(stats.write_latency.P99())}}});
      std::fflush(stdout);
    }
    PrintTableRow(row);
  }
  std::printf("\n");
  if (WriteBenchJson(json_path, "e2", json_rows)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// E2 — Figure: throughput of every system on YCSB workloads A-D.
//
// Paper shape: ChainReaction's distributed reads beat CRAQ (which pays tail
// version queries whenever objects are dirty) and far outrun CR (tail-only
// reads); on read-heavy workloads ChainReaction approaches the eventual
// (R1W1) store's throughput while giving causal+ guarantees; the quorum
// configuration pays fan-out on every operation.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

int main() {
  const WorkloadSpec specs[] = {
      WorkloadSpec::A(1000, 1024),
      WorkloadSpec::B(1000, 1024),
      WorkloadSpec::C(1000, 1024),
      WorkloadSpec::D(1000, 1024),
  };

  PrintTableHeader("E2: throughput (ops/s), 12 servers, 96 closed-loop clients",
                   {"system", "YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D"});
  for (SystemKind system : AllSystems()) {
    std::vector<std::string> row = {SystemKindName(system)};
    for (const WorkloadSpec& spec : specs) {
      CellOptions cell;
      cell.system = system;
      cell.spec = spec;
      CellResult result = RunCell(cell);
      row.push_back(Fmt("%.0f", result.run.throughput_ops_sec));
      std::fflush(stdout);
    }
    PrintTableRow(row);
  }
  std::printf("\n");
  return 0;
}

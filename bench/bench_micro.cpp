// M1-M5 — google-benchmark micro-benchmarks for the hot substrate paths:
// message serialization, ring chain lookup, versioned-store operations,
// zipfian generation, histogram recording, and the causal checker.
//
// Every benchmark also reports "allocs/op" (heap allocations per iteration,
// via a global operator-new hook) — the target the allocation-light
// encoding work optimizes.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "src/checker/causal_checker.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/msg/message.h"
#include "src/obs/alloc_phase.h"
#include "src/ring/ring.h"
#include "src/storage/versioned_store.h"
#include "src/ycsb/generators.h"
#include "src/ycsb/workload.h"

static std::atomic<uint64_t> g_allocs{0};
// Per-phase buckets (decode/apply/encode/callback/other) keyed by the
// allocating thread's AllocPhase stamp; AllocCounter reports any nonzero
// bucket as its own counter.
static std::atomic<uint64_t> g_phase_allocs[chainreaction::kAllocPhaseCount] = {};

static void* CountedAlloc(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_phase_allocs[static_cast<size_t>(chainreaction::g_alloc_phase)].fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace chainreaction {
namespace {

// Wraps a benchmark loop body: counts heap allocations across the timed
// region and reports them per iteration.
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state) : state_(state) {
    start_ = g_allocs.load(std::memory_order_relaxed);
    for (size_t p = 0; p < kAllocPhaseCount; ++p) {
      phase_start_[p] = g_phase_allocs[p].load(std::memory_order_relaxed);
    }
  }
  ~AllocCounter() {
    const uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
    for (size_t p = 0; p < kAllocPhaseCount; ++p) {
      const uint64_t n = g_phase_allocs[p].load(std::memory_order_relaxed) - phase_start_[p];
      if (n == 0) {
        continue;  // benches outside explicit scopes only emit the total
      }
      state_.counters[std::string("allocs/op:") +
                      AllocPhaseName(static_cast<AllocPhase>(p))] =
          benchmark::Counter(static_cast<double>(n), benchmark::Counter::kAvgIterations);
    }
  }

 private:
  benchmark::State& state_;
  uint64_t start_ = 0;
  uint64_t phase_start_[kAllocPhaseCount] = {};
};

void BM_EncodeChainPut(benchmark::State& state) {
  CrxChainPut msg;
  msg.key = "user000000012345";
  msg.value = std::string(static_cast<size_t>(state.range(0)), 'v');
  msg.version.vv = VersionVector(2);
  msg.version.vv.Set(0, 123);
  msg.version.lamport = 123456789;
  msg.deps.push_back(Dependency{"user000000000007", msg.version});
  AllocCounter alloc(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeMessage(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncodeChainPut)->Arg(64)->Arg(512)->Arg(4096);

void BM_DecodeChainPut(benchmark::State& state) {
  CrxChainPut msg;
  msg.key = "user000000012345";
  msg.value = std::string(static_cast<size_t>(state.range(0)), 'v');
  msg.version.vv = VersionVector(2);
  const std::string payload = EncodeMessage(msg);
  AllocCounter alloc(state);
  for (auto _ : state) {
    CrxChainPut out;
    benchmark::DoNotOptimize(DecodeMessage(payload, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeChainPut)->Arg(64)->Arg(512)->Arg(4096);

// The zero-copy twin of BM_DecodeChainPut: decode into a view whose
// key/value alias the wire buffer. Allocation-free regardless of value size
// (the dep list fits DepList's inline capacity).
void BM_DecodeChainPutView(benchmark::State& state) {
  CrxChainPut msg;
  msg.key = "user000000012345";
  msg.value = std::string(static_cast<size_t>(state.range(0)), 'v');
  msg.version.vv = VersionVector(2);
  msg.deps.push_back(Dependency{"user000000000007", msg.version});
  const std::string payload = EncodeMessage(msg);
  AllocCounter alloc(state);
  for (auto _ : state) {
    AllocPhaseScope phase(AllocPhase::kDecode);
    CrxChainPutView out;
    benchmark::DoNotOptimize(DecodeMessage(payload, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeChainPutView)->Arg(64)->Arg(512)->Arg(4096);

// Encode-from-view (the down-chain forward path): fields alias an inbound
// buffer; only the output frame itself is allocated.
void BM_EncodeChainPutView(benchmark::State& state) {
  CrxChainPut owned;
  owned.key = "user000000012345";
  owned.value = std::string(static_cast<size_t>(state.range(0)), 'v');
  owned.version.vv = VersionVector(2);
  owned.deps.push_back(Dependency{"user000000000007", owned.version});
  const CrxChainPutView msg = CrxChainPutView::From(owned);
  AllocCounter alloc(state);
  for (auto _ : state) {
    AllocPhaseScope phase(AllocPhase::kEncode);
    benchmark::DoNotOptimize(EncodeMessage(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncodeChainPutView)->Arg(64)->Arg(512)->Arg(4096);

void BM_RingChainLookupCold(benchmark::State& state) {
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < static_cast<NodeId>(state.range(0)); ++n) {
    nodes.push_back(n);
  }
  uint64_t i = 0;
  AllocCounter alloc(state);
  for (auto _ : state) {
    // Fresh ring per batch to measure uncached lookups.
    state.PauseTiming();
    Ring ring(nodes, 16, 3);
    state.ResumeTiming();
    for (int j = 0; j < 64; ++j) {
      benchmark::DoNotOptimize(ring.ChainFor(RecordKey(i++ % 4096)));
    }
  }
}
BENCHMARK(BM_RingChainLookupCold)->Arg(16)->Arg(64)->Arg(256);

void BM_RingChainLookupCached(benchmark::State& state) {
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < 64; ++n) {
    nodes.push_back(n);
  }
  Ring ring(nodes, 16, 3);
  uint64_t i = 0;
  AllocCounter alloc(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ChainFor(RecordKey(i++ % 1024)));
  }
}
BENCHMARK(BM_RingChainLookupCached);

void BM_StoreApply(benchmark::State& state) {
  VersionedStore store;
  uint64_t lamport = 1;
  AllocCounter alloc(state);
  for (auto _ : state) {
    Version v;
    v.vv = VersionVector(1);
    v.vv.Set(0, lamport);
    v.lamport = lamport++;
    store.Apply(RecordKey(lamport % 1024), "value-payload-128-bytes", v);
    if ((lamport & 0xff) == 0) {
      store.MarkStable(RecordKey(lamport % 1024), v);
    }
  }
}
BENCHMARK(BM_StoreApply);

void BM_StoreLatest(benchmark::State& state) {
  VersionedStore store;
  for (uint64_t i = 0; i < 1024; ++i) {
    Version v;
    v.vv = VersionVector(1);
    v.vv.Set(0, 1);
    v.lamport = i + 1;
    store.Apply(RecordKey(i), "value", v);
  }
  uint64_t i = 0;
  AllocCounter alloc(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Latest(RecordKey(i++ % 1024)));
  }
}
BENCHMARK(BM_StoreLatest);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianChooser zipf(static_cast<uint64_t>(state.range(0)));
  Rng rng(1);
  AllocCounter alloc(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(&rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(10000)->Arg(10000000);

void BM_ScrambledZipfianNext(benchmark::State& state) {
  ScrambledZipfianChooser zipf(1000000);
  Rng rng(1);
  AllocCounter alloc(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(&rng));
  }
}
BENCHMARK(BM_ScrambledZipfianNext);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  AllocCounter alloc(state);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextBelow(1000000)));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_CausalCheckerRead(benchmark::State& state) {
  CausalChecker checker;
  Version v;
  v.vv = VersionVector(2);
  v.vv.Set(0, 1);
  v.lamport = 1;
  for (uint32_t s = 0; s < 16; ++s) {
    checker.RecordWrite(s, RecordKey(s), v, {});
  }
  uint64_t i = 0;
  AllocCounter alloc(state);
  for (auto _ : state) {
    checker.RecordRead(static_cast<uint32_t>(i % 16), RecordKey(i % 16), true, v);
    i++;
  }
}
BENCHMARK(BM_CausalCheckerRead);

}  // namespace
}  // namespace chainreaction

BENCHMARK_MAIN();

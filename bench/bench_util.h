// Shared helpers for the experiment binaries (bench_e1 ... bench_e10).
//
// Each binary regenerates one table/figure of the paper's evaluation: it
// builds simulated clusters, drives YCSB workloads, and prints the rows the
// paper reports. Absolute numbers come from the simulator's cost model; the
// *shape* (system ranking, crossover points, scaling behaviour) is the
// reproduction target — see EXPERIMENTS.md.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"

namespace chainreaction {

struct CellOptions {
  SystemKind system = SystemKind::kChainReaction;
  // The default cell saturates the servers with byte-weighted service
  // costs (10us + 0.2us/B in each direction: a node spends ~215us
  // receiving or sending a 1 KiB value, ~15us on a control message — a
  // FAWN-class backend). That is the regime of the paper's evaluation:
  // read capacity limits throughput, the zipfian hot keys pin their
  // chains, and who may serve (and pay to return) a hot value decides the
  // ranking, while small causality-control messages stay cheap.
  uint32_t servers = 12;
  uint32_t clients = 96;
  uint32_t replication = 3;
  uint32_t k_stability = 2;
  uint16_t num_dcs = 1;
  uint64_t seed = 7;
  WorkloadSpec spec;
  Duration warmup = 300 * kMillisecond;
  Duration measure = 1 * kSecond;
  Duration think_time = 0;
  ServiceModel server_service{10, 0.2, 5, 0, 0.2};
  // >0: trace every Nth put (ChainReaction only); traces land in
  // cluster->traces() for post-run inspection.
  uint32_t trace_sample_every = 0;
  // Probabilistic head sampling / tail-based slow-trace capture (see
  // ClusterOptions; ChainReaction only).
  double trace_probability = 0.0;
  int64_t slow_trace_us = 0;
};

struct CellResult {
  RunResult run;
  std::unique_ptr<Cluster> cluster;  // retained for post-run introspection
};

inline CellResult RunCell(const CellOptions& cell) {
  ClusterOptions opts;
  opts.system = cell.system;
  opts.servers_per_dc = cell.servers;
  opts.clients_per_dc = cell.clients / std::max<uint16_t>(1, cell.num_dcs);
  opts.replication = cell.replication;
  opts.k_stability = cell.k_stability;
  opts.num_dcs = cell.num_dcs;
  opts.seed = cell.seed;
  opts.server_service = cell.server_service;
  opts.trace_sample_every = cell.trace_sample_every;
  opts.trace_probability = cell.trace_probability;
  opts.slow_trace_us = cell.slow_trace_us;

  CellResult out;
  out.cluster = std::make_unique<Cluster>(opts);
  RunOptions run;
  run.spec = cell.spec;
  run.warmup = cell.warmup;
  run.measure = cell.measure;
  run.think_time = cell.think_time;
  out.run = RunWorkload(out.cluster.get(), run);
  return out;
}

// Dumps the cluster's metrics registry — every instrument, or only those
// whose "name{labels}" line contains `filter`. Benchmarks call this after a
// cell to show protocol-level counters next to the reported rows.
inline void PrintMetrics(const Cluster& cluster, const std::string& filter = "") {
  std::printf("%s", RenderTextFiltered(cluster.metrics()->Snapshot(), filter).c_str());
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtU(uint64_t v) { return std::to_string(v); }

// Machine-readable results ---------------------------------------------
//
// Benchmarks that feed the perf trajectory (E2, E16) also emit a flat JSON
// file of named rows so regressions can be diffed across commits without
// scraping the human tables. Values are numeric only.
struct BenchJsonRow {
  std::string name;
  std::vector<std::pair<std::string, double>> values;
};

// Quoted + escaped via the obs JSON renderer's escaper, so bench/row/key
// names containing quotes, backslashes, or control bytes stay valid JSON.
inline std::string BenchJsonQuoted(const std::string& s) {
  std::string out;
  AppendJsonString(&out, s);
  return out;
}

inline bool WriteBenchJson(const std::string& path, const std::string& bench,
                           const std::vector<BenchJsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": %s,\n  \"rows\": [\n", BenchJsonQuoted(bench).c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    {\"name\": %s", BenchJsonQuoted(rows[i].name).c_str());
    for (const auto& [key, value] : rows[i].values) {
      std::fprintf(f, ", %s: %.6g", BenchJsonQuoted(key).c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

inline const std::vector<SystemKind>& AllSystems() {
  static const std::vector<SystemKind> kSystems = {
      SystemKind::kChainReaction, SystemKind::kCraq, SystemKind::kCr,
      SystemKind::kEventualOne, SystemKind::kQuorum};
  return kSystems;
}

}  // namespace chainreaction

#endif  // BENCH_BENCH_UTIL_H_

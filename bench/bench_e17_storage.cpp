// E17 — Beyond-RAM storage: the disk engine under memory pressure.
//
// Part 1 runs a simulated ChainReaction cell whose per-node dataset is
// several times the residency-cache budget, on YCSB-B with a *rotating*
// zipfian hot set (the rotation forces cold reads: every rotation the new
// hot keys must be faulted in from the value log). The causal+ checker is
// attached — correctness must not depend on residency. Reported: the
// dataset/budget ratio, throughput, checker violations, and the engine
// counters (log bytes, compactions, cache hit ratio).
//
// Part 2 measures the two read tiers on a standalone store: a hot set that
// fits the cache (reads are memory lookups) vs. uniform reads over a
// dataset many times the budget (most reads pay a pread + checksum). The
// gap is the point of the cache; the cold number is the engine's floor.
//
// Part 3 compares checkpointing under the two engines for the same data:
// the mem engine writes every value (O(data)); the disk engine writes an
// index snapshot + log manifest (O(index)), so its file should be a small
// fraction of the mem checkpoint, and loading it adopts handles instead of
// rewriting values. Load time is the recovery-path comparison.
//
// --smoke runs small and enforces the gates (0 violations, dataset >= 4x
// budget, hot tier beats cold tier, disk checkpoint <= 1/4 of mem);
// exit code 1 on any failure. Results land in BENCH_e17.json (--out).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/storage_engine.h"
#include "src/storage/checkpoint.h"
#include "src/storage/versioned_store.h"

using namespace chainreaction;

namespace {

int g_failures = 0;

void Gate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE GATE FAILED: %s\n", what);
    g_failures++;
  }
}

std::string ScratchDir(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("crx_e17_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SumGauges(const MetricsSnapshot& snap, const std::string& name) {
  int64_t sum = 0;
  for (const MetricPoint& p : snap.points) {
    if (p.name == name) {
      sum += p.value;
    }
  }
  return sum;
}

Version V(uint64_t lamport) {
  Version v;
  v.lamport = lamport;
  v.origin = 0;
  v.vv = VersionVector(1);
  v.vv.Set(0, lamport);
  return v;
}

std::unique_ptr<StorageEngine> OpenDisk(const std::string& dir) {
  DiskEngineOptions opts;
  opts.segment_bytes = 1u << 20;
  std::unique_ptr<StorageEngine> engine;
  const Status st = OpenDiskEngine(dir, opts, &engine);
  if (!st.ok()) {
    std::fprintf(stderr, "open disk engine: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return engine;
}

// Part 1: a cell whose working set cannot fit the cache.
void ClusterCell(bool smoke, std::vector<BenchJsonRow>* rows) {
  const uint64_t records = smoke ? 2560 : 8000;
  const size_t value_size = 1024;
  const uint64_t cache_budget = 256u << 10;  // 256 KiB per node
  const uint32_t servers = 6;
  const uint32_t replication = 3;

  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = servers;
  opts.clients_per_dc = smoke ? 8 : 24;
  opts.replication = replication;
  opts.seed = 7;
  opts.data_root = ScratchDir("cluster");
  opts.engine = StorageEngineKind::kDisk;
  opts.engine_cache_bytes = cache_budget;
  opts.engine_segment_bytes = 512u << 10;

  Cluster cluster(opts);
  RunOptions run;
  run.spec = WorkloadSpec::B(records, value_size);
  run.spec.distribution = Distribution::kZipfianRotating;
  run.spec.hot_set_rotate_ops = smoke ? 200 : 1000;
  run.warmup = (smoke ? 100 : 300) * kMillisecond;
  run.measure = (smoke ? 300 : 1000) * kMillisecond;
  run.attach_checker = true;
  const RunResult result = RunWorkload(&cluster, run);

  const uint64_t dataset_bytes = records * value_size;
  const uint64_t per_node_bytes = dataset_bytes * replication / servers;
  const double ratio =
      static_cast<double>(per_node_bytes) / static_cast<double>(cache_budget);

  const MetricsSnapshot snap = cluster.metrics()->Snapshot();
  const int64_t resident = SumGauges(snap, "crx_store_resident_bytes");
  const int64_t log_bytes = SumGauges(snap, "crx_engine_log_bytes");
  const int64_t compactions = snap.SumCounters("crx_engine_compactions_total");
  const int64_t hit_pct = SumGauges(snap, "crx_engine_cache_hit_ratio") / servers;

  std::string diag;
  const bool converged = cluster.CheckConvergence(&diag);
  std::filesystem::remove_all(opts.data_root);

  PrintTableRow({FmtU(dataset_bytes / 1024) + "KiB", FmtU(cache_budget / 1024) + "KiB",
                 Fmt("%.1fx", ratio), Fmt("%.0f", result.throughput_ops_sec),
                 FmtU(result.checker_violations), converged ? "yes" : "NO",
                 FmtU(static_cast<uint64_t>(resident) / 1024) + "KiB",
                 FmtU(static_cast<uint64_t>(log_bytes) / 1024) + "KiB",
                 FmtU(static_cast<uint64_t>(compactions)),
                 FmtU(static_cast<uint64_t>(hit_pct)) + "%"});
  if (!converged) {
    std::printf("  divergence: %s\n", diag.c_str());
  }

  rows->push_back({"cluster_disk_beyond_ram",
                   {{"dataset_bytes", static_cast<double>(dataset_bytes)},
                    {"per_node_bytes", static_cast<double>(per_node_bytes)},
                    {"cache_budget_bytes", static_cast<double>(cache_budget)},
                    {"dataset_over_budget", ratio},
                    {"ops_per_sec", result.throughput_ops_sec},
                    {"checker_violations", static_cast<double>(result.checker_violations)},
                    {"converged", converged ? 1.0 : 0.0},
                    {"resident_bytes_total", static_cast<double>(resident)},
                    {"log_bytes_total", static_cast<double>(log_bytes)},
                    {"compactions", static_cast<double>(compactions)},
                    {"cache_hit_pct", static_cast<double>(hit_pct)}}});

  if (smoke) {
    Gate(result.checker_violations == 0, "cluster: checker violations != 0");
    Gate(converged, "cluster: replicas did not converge");
    Gate(ratio >= 4.0, "cluster: dataset < 4x cache budget");
    Gate(result.throughput_ops_sec > 0, "cluster: no throughput");
    // Residency must be bounded by budget (+ per-node pinned slack).
    Gate(static_cast<uint64_t>(resident) <
             servers * (cache_budget + 16 * value_size),
         "cluster: resident bytes exceed cache budget");
  }
}

// Part 2: hot-tier vs cold-tier read cost on a standalone store.
void TierCell(bool smoke, std::vector<BenchJsonRow>* rows) {
  const uint64_t records = smoke ? 4000 : 20000;
  const size_t value_size = 1024;
  const uint64_t cache_budget = 1u << 20;  // 1 MiB vs ~records MiB of data
  const std::string dir = ScratchDir("tiers");

  VersionedStore store;
  store.AttachEngine(OpenDisk(dir));
  store.SetCacheBudget(cache_budget);
  for (uint64_t i = 0; i < records; ++i) {
    store.Apply("user" + std::to_string(i), std::string(value_size, 'v'), V(i + 1));
  }

  const uint64_t hot_keys = 256;  // 256 KiB: fits the cache easily
  const uint64_t reads = smoke ? 20000 : 200000;

  // Warm the hot set, then measure it.
  for (uint64_t i = 0; i < hot_keys; ++i) {
    store.Latest("user" + std::to_string(i));
  }
  uint64_t hits0 = store.cache_hits(), miss0 = store.cache_misses();
  int64_t start = NowUs();
  for (uint64_t i = 0; i < reads; ++i) {
    store.Latest("user" + std::to_string(i % hot_keys));
  }
  const int64_t hot_wall = NowUs() - start;
  const double hot_ns = 1e3 * static_cast<double>(hot_wall) / static_cast<double>(reads);
  const uint64_t hot_hits = store.cache_hits() - hits0;
  const uint64_t hot_misses = store.cache_misses() - miss0;
  const double hot_hit_pct =
      100.0 * static_cast<double>(hot_hits) / static_cast<double>(hot_hits + hot_misses);

  // Cold tier: stride through the whole keyspace so reads rarely repeat
  // within a cache lifetime.
  hits0 = store.cache_hits();
  miss0 = store.cache_misses();
  start = NowUs();
  const uint64_t stride = 7919;  // prime, co-prime with records
  for (uint64_t i = 0; i < reads; ++i) {
    store.Latest("user" + std::to_string((i * stride) % records));
  }
  const int64_t cold_wall = NowUs() - start;
  const double cold_ns = 1e3 * static_cast<double>(cold_wall) / static_cast<double>(reads);
  const uint64_t cold_hits = store.cache_hits() - hits0;
  const uint64_t cold_misses = store.cache_misses() - miss0;
  const double cold_hit_pct =
      100.0 * static_cast<double>(cold_hits) / static_cast<double>(cold_hits + cold_misses);

  std::filesystem::remove_all(dir);

  PrintTableRow({"hot (cached)", FmtU(reads), Fmt("%.0fns", hot_ns),
                 Fmt("%.1f%%", hot_hit_pct)});
  PrintTableRow({"cold (log read)", FmtU(reads), Fmt("%.0fns", cold_ns),
                 Fmt("%.1f%%", cold_hit_pct)});

  rows->push_back({"read_tiers",
                   {{"records", static_cast<double>(records)},
                    {"cache_budget_bytes", static_cast<double>(cache_budget)},
                    {"hot_ns_per_read", hot_ns},
                    {"hot_hit_pct", hot_hit_pct},
                    {"cold_ns_per_read", cold_ns},
                    {"cold_hit_pct", cold_hit_pct}}});

  if (smoke) {
    Gate(hot_hit_pct > cold_hit_pct, "tiers: hot hit ratio not above cold");
    Gate(hot_hit_pct > 99.0, "tiers: hot set not cache-resident");
  }
}

// Part 3: checkpoint size + save/load (recovery) cost, mem vs disk engine.
void CheckpointCell(bool smoke, std::vector<BenchJsonRow>* rows) {
  const uint64_t records = smoke ? 4000 : 20000;
  const size_t value_size = 1024;
  const std::string dir = ScratchDir("ckpt");
  std::filesystem::create_directories(dir);

  struct Outcome {
    uint64_t file_bytes = 0;
    int64_t save_us = 0;
    int64_t load_us = 0;
  };
  Outcome outcomes[2];

  for (const StorageEngineKind kind : {StorageEngineKind::kMem, StorageEngineKind::kDisk}) {
    const std::string vlog = dir + "/vlog-" + StorageEngineKindName(kind);
    const std::string path = dir + "/ckpt-" + StorageEngineKindName(kind);
    {
      VersionedStore store;
      if (kind == StorageEngineKind::kDisk) {
        store.AttachEngine(OpenDisk(vlog));
        store.SetCacheBudget(1u << 20);
      }
      for (uint64_t i = 0; i < records; ++i) {
        const Key key = "user" + std::to_string(i);
        store.Apply(key, std::string(value_size, 'v'), V(i + 1));
        store.MarkStable(key, V(i + 1));
      }
      const int64_t t0 = NowUs();
      const Status st = SaveCheckpoint(store, path, /*wal_seq=*/1);
      outcomes[static_cast<int>(kind)].save_us = NowUs() - t0;
      if (!st.ok()) {
        std::fprintf(stderr, "save(%s): %s\n", StorageEngineKindName(kind),
                     st.ToString().c_str());
        std::exit(1);
      }
    }
    outcomes[static_cast<int>(kind)].file_bytes = std::filesystem::file_size(path);
    {
      VersionedStore restored;
      if (kind == StorageEngineKind::kDisk) {
        restored.AttachEngine(OpenDisk(vlog));
        restored.SetCacheBudget(1u << 20);
      }
      const int64_t t0 = NowUs();
      const Status st = LoadCheckpoint(path, &restored);
      outcomes[static_cast<int>(kind)].load_us = NowUs() - t0;
      if (!st.ok() || restored.total_versions() != records) {
        std::fprintf(stderr, "load(%s): %s (versions=%llu)\n", StorageEngineKindName(kind),
                     st.ToString().c_str(),
                     static_cast<unsigned long long>(restored.total_versions()));
        std::exit(1);
      }
    }
    PrintTableRow({StorageEngineKindName(kind), FmtU(records),
                   FmtU(outcomes[static_cast<int>(kind)].file_bytes / 1024) + "KiB",
                   FormatMicros(outcomes[static_cast<int>(kind)].save_us),
                   FormatMicros(outcomes[static_cast<int>(kind)].load_us)});
  }
  std::filesystem::remove_all(dir);

  const Outcome& mem = outcomes[static_cast<int>(StorageEngineKind::kMem)];
  const Outcome& disk = outcomes[static_cast<int>(StorageEngineKind::kDisk)];
  const double shrink = static_cast<double>(mem.file_bytes) /
                        static_cast<double>(std::max<uint64_t>(1, disk.file_bytes));
  std::printf("(disk checkpoint is %.1fx smaller: index + manifest, not values)\n\n",
              shrink);

  rows->push_back({"checkpoint_mem",
                   {{"records", static_cast<double>(records)},
                    {"file_bytes", static_cast<double>(mem.file_bytes)},
                    {"save_us", static_cast<double>(mem.save_us)},
                    {"load_us", static_cast<double>(mem.load_us)}}});
  rows->push_back({"checkpoint_disk",
                   {{"records", static_cast<double>(records)},
                    {"file_bytes", static_cast<double>(disk.file_bytes)},
                    {"save_us", static_cast<double>(disk.save_us)},
                    {"load_us", static_cast<double>(disk.load_us)},
                    {"shrink_vs_mem", shrink}}});

  if (smoke) {
    Gate(disk.file_bytes * 4 <= mem.file_bytes,
         "checkpoint: disk file not <= 1/4 of mem file");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_e17.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out file.json]\n", argv[0]);
      return 2;
    }
  }

  std::vector<BenchJsonRow> rows;

  PrintTableHeader(
      "E17a: YCSB-B (rotating hot set) on disk-engine nodes, dataset >> cache",
      {"dataset", "cache", "ratio", "ops/s", "violations", "converged", "resident",
       "log", "compactions", "hit%"});
  ClusterCell(smoke, &rows);
  std::printf(
      "(correctness under memory pressure: the checker and convergence must "
      "hold no matter what is resident; hit%% < 100 shows the log is "
      "actually being read)\n\n");

  PrintTableHeader("E17b: read tiers, standalone store (1KiB values)",
                   {"tier", "reads", "ns/read", "hit ratio"});
  TierCell(smoke, &rows);
  std::printf(
      "(the hot tier is the cache's point; the cold tier is a pread + "
      "checksum per read — the engine's floor)\n\n");

  PrintTableHeader("E17c: checkpoint cost, mem vs disk engine (1KiB values)",
                   {"engine", "records", "file", "save", "load"});
  CheckpointCell(smoke, &rows);

  if (!WriteBenchJson(out, "bench_e17_storage", rows)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (smoke && g_failures > 0) {
    std::fprintf(stderr, "%d smoke gate(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}

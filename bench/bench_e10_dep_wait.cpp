// E10 — Ablation: cost of dependency-stability gating at the head.
//
// A write must wait until its dependencies are DC-Write-Stable. The wait is
// only visible when a client writes very soon after reading data whose
// chain has not yet stabilized — i.e. under low think time and high write
// rates. Expected shape: the fraction of gated writes and the mean wait
// drop quickly as client think time grows (propagation to the tail hides
// behind client latency), which is the paper's argument for why the gating
// is cheap in practice.
#include <cstdio>

#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void Row(Duration think, const char* label, bool watermark = false) {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 16;
  opts.clients_per_dc = 48;
  opts.k_stability = 1;  // maximally exposes the unstable window
  opts.seed = 7;
  opts.dep_watermark = watermark;  // clients drop watermark-covered deps
  Cluster cluster(opts);

  RunOptions run;
  run.spec = WorkloadSpec::A(1000, 1024);
  run.warmup = 300 * kMillisecond;
  run.measure = 1500 * kMillisecond;
  run.think_time = think;
  const RunResult result = RunWorkload(&cluster, run);

  const uint64_t waits = cluster.TotalDepWaits();
  const uint64_t writes = cluster.TotalWritesApplied();
  const double wait_frac =
      writes == 0 ? 0 : 100.0 * static_cast<double>(waits) / static_cast<double>(writes);
  const Histogram hist = cluster.MergedDepWaitHist();
  PrintTableRow({label, Fmt("%.0f", result.throughput_ops_sec), FmtU(waits),
                 Fmt("%.2f%%", wait_frac), Fmt("%.0fus", hist.Mean()),
                 FormatMicros(hist.P99())});
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintTableHeader("E10: dependency-gating cost vs client think time (k=1, YCSB-A)",
                   {"think time", "ops/s", "gated writes", "gated frac", "mean wait", "p99 wait"});
  Row(0, "0");
  Row(1 * kMillisecond, "1ms");
  Row(5 * kMillisecond, "5ms");
  Row(20 * kMillisecond, "20ms");
  // Ablation: stable-watermark dependency compression. Deps the watermark
  // covers are dropped before the put ever reaches the head, so they can
  // neither gate nor trigger the stability check round trip. At think 0 the
  // deps are younger than the watermark lag (one gossip round) and nothing
  // changes; with a few ms of think time the previous write is already
  // covered and the gated fraction collapses — gating cost tracks how fresh
  // the client's causal past is, not how much of it there is.
  Row(0, "0 +watermark", /*watermark=*/true);
  Row(5 * kMillisecond, "5ms +watermark", /*watermark=*/true);
  Row(20 * kMillisecond, "20ms +watermark", /*watermark=*/true);
  std::printf(
      "(the mean wait stays ~1 intra-DC RTT: by the time the head's stability check\n"
      " reaches the dependency's tail the version is almost always stable already, so\n"
      " the check round trip itself — not blocking — is the dominant gating cost)\n\n");
  return 0;
}

// E12 — Extension ablation (not in the paper): sensitivity of the
// ChainReaction-vs-CR comparison to value size.
//
// ChainReaction's causality machinery is pure control traffic (deps,
// stability checks, notifications). With tiny values, control messages are
// a large fraction of server work and ChainReaction's advantage narrows or
// inverts; as values grow, data movement dominates, the control overhead
// vanishes, and the read-distribution advantage converges to its capacity
// limit. This locates the regime boundary that E2 discusses.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

double Cell(SystemKind system, size_t value_size) {
  CellOptions cell;
  cell.system = system;
  cell.spec = WorkloadSpec::C(1000, value_size);
  cell.measure = 800 * kMillisecond;
  CellResult result = RunCell(cell);
  return result.run.throughput_ops_sec;
}

}  // namespace

int main() {
  PrintTableHeader("E12: read-only (YCSB-C) throughput vs value size",
                   {"value size", "CHAINREACTION", "CR(FAWN-KV)", "CRX/CR"});
  for (size_t size : {64u, 256u, 1024u, 4096u}) {
    const double crx = Cell(SystemKind::kChainReaction, size);
    const double cr = Cell(SystemKind::kCr, size);
    PrintTableRow({FmtU(size) + "B", Fmt("%.0f", crx), Fmt("%.0f", cr),
                   Fmt("%.2fx", crx / cr)});
    std::fflush(stdout);
  }
  std::printf("(the read-distribution advantage holds across sizes on read-only\n"
              " traffic; write-bearing workloads shift the boundary — see E2)\n\n");
  return 0;
}

// E4 — Figure: throughput scalability with cluster size, YCSB-B.
//
// Clients scale with servers (3 per server), so per-server load is
// constant: a scalable system grows near-linearly. Paper shape: all chain
// systems scale with servers; ChainReaction keeps its advantage over CRAQ
// and CR at every size because read capacity grows with the whole chain,
// not just the tails.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

int main() {
  const uint32_t sizes[] = {8, 16, 24, 32};
  const SystemKind systems[] = {SystemKind::kChainReaction, SystemKind::kCraq, SystemKind::kCr,
                                SystemKind::kEventualOne};

  PrintTableHeader("E4: throughput (ops/s) vs cluster size, YCSB-B, 8 clients/server",
                   {"system", "8 srv", "16 srv", "24 srv", "32 srv"});
  for (SystemKind system : systems) {
    std::vector<std::string> row = {SystemKindName(system)};
    for (uint32_t servers : sizes) {
      CellOptions cell;
      cell.system = system;
      cell.servers = servers;
      cell.clients = servers * 8;
      cell.spec = WorkloadSpec::B(1000, 1024);
      cell.measure = 1 * kSecond;
      CellResult result = RunCell(cell);
      row.push_back(Fmt("%.0f", result.run.throughput_ops_sec));
      std::fflush(stdout);
    }
    PrintTableRow(row);
  }
  std::printf("\n");
  return 0;
}

// E6 — Figure: operation latency under geo-replication (2 DCs, 80 ms WAN)
// versus a single DC.
//
// Paper shape: ChainReaction decouples client latency from the WAN — both
// reads and writes complete at local-DC latency (writes wait only for local
// k-stability; updates ship to the remote DC asynchronously). The price is
// visibility lag, measured in E7.
#include <cstdio>

#include "bench/bench_util.h"

using namespace chainreaction;

namespace {

void Row(const char* label, uint16_t dcs, const WorkloadSpec& spec) {
  CellOptions cell;
  cell.system = SystemKind::kChainReaction;
  cell.num_dcs = dcs;
  // Same total hardware and client population in both configurations: the
  // geo deployment splits 12 servers and 48 clients across the two DCs.
  cell.servers = 12 / dcs;
  cell.clients = 48;
  cell.spec = spec;
  CellResult result = RunCell(cell);
  const Histogram& r = result.run.stats.read_latency;
  const Histogram& w = result.run.stats.write_latency;
  PrintTableRow({label, Fmt("%.0f", result.run.throughput_ops_sec), Fmt("%.0fus", r.Mean()),
                 FormatMicros(r.P99()),
                 w.count() > 0 ? Fmt("%.0fus", w.Mean()) : "-",
                 w.count() > 0 ? FormatMicros(w.P99()) : "-"});
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintTableHeader("E6: ChainReaction single-DC vs geo (2 DCs, 80ms WAN one-way)",
                   {"config", "ops/s", "rd-mean", "rd-p99", "wr-mean", "wr-p99"});
  Row("1 DC, YCSB-A", 1, WorkloadSpec::A(1000, 1024));
  Row("2 DC, YCSB-A", 2, WorkloadSpec::A(1000, 1024));
  Row("1 DC, YCSB-B", 1, WorkloadSpec::B(1000, 1024));
  Row("2 DC, YCSB-B", 2, WorkloadSpec::B(1000, 1024));
  std::printf("(client ops never block on the WAN: latencies stay at LAN scale)\n\n");
  return 0;
}

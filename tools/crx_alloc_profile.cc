// Allocation-site profiler for the TCP hot path.
//
// Runs the same closed-loop deployment as bench_e16_hotpath's overhaul cell
// with a sampling operator-new hook: every Nth allocation captures a stack
// (glibc backtrace), aggregated into a fixed-size table keyed by stack
// hash. At exit the top sites are symbolized and printed with their share
// of sampled allocations — the worklist for driving allocs/op down.
//
// Usage: crx_alloc_profile [duration_ms] [sample_every]
#include <execinfo.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "src/net/tcp_cluster.h"

namespace {

constexpr int kMaxDepth = 14;
constexpr int kSkipFrames = 2;  // hook + operator new
constexpr size_t kTableSize = 4096;  // open-addressed, power of two

struct StackSlot {
  std::atomic<uint64_t> hash{0};
  std::atomic<uint64_t> count{0};
  void* frames[kMaxDepth] = {};
  int depth = 0;
};

StackSlot g_table[kTableSize];
std::atomic<uint64_t> g_total{0};
std::atomic<uint64_t> g_sampled{0};
std::atomic<uint64_t> g_dropped{0};
thread_local bool t_in_hook = false;
int g_sample_every = 16;
std::atomic<bool> g_armed{false};

void RecordStack() {
  void* frames[kMaxDepth + kSkipFrames];
  const int n = backtrace(frames, kMaxDepth + kSkipFrames);
  if (n <= kSkipFrames) {
    return;
  }
  const int depth = n - kSkipFrames;
  uint64_t hash = 1469598103934665603ULL;
  for (int i = 0; i < depth; ++i) {
    hash ^= reinterpret_cast<uint64_t>(frames[kSkipFrames + i]);
    hash *= 1099511628211ULL;
  }
  hash |= 1;  // 0 marks an empty slot
  size_t idx = hash & (kTableSize - 1);
  for (size_t probe = 0; probe < 64; ++probe, idx = (idx + 1) & (kTableSize - 1)) {
    uint64_t expected = 0;
    if (g_table[idx].hash.load(std::memory_order_acquire) == hash) {
      g_table[idx].count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (g_table[idx].hash.compare_exchange_strong(expected, hash)) {
      std::memcpy(g_table[idx].frames, frames + kSkipFrames,
                  sizeof(void*) * static_cast<size_t>(depth));
      g_table[idx].depth = depth;
      g_table[idx].count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  g_dropped.fetch_add(1, std::memory_order_relaxed);
}

void* HookedAlloc(size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  if (!g_armed.load(std::memory_order_relaxed) || t_in_hook) {
    return p;
  }
  const uint64_t n = g_total.fetch_add(1, std::memory_order_relaxed);
  if (g_sample_every > 1 && (n % static_cast<uint64_t>(g_sample_every)) != 0) {
    return p;
  }
  t_in_hook = true;  // backtrace() may itself allocate on first use
  g_sampled.fetch_add(1, std::memory_order_relaxed);
  RecordStack();
  t_in_hook = false;
  return p;
}

}  // namespace

void* operator new(size_t size) { return HookedAlloc(size); }
void* operator new[](size_t size) { return HookedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace chainreaction {
namespace {

int Main(int argc, char** argv) {
  const int duration_ms = argc > 1 ? std::atoi(argv[1]) : 2000;
  g_sample_every = argc > 2 ? std::atoi(argv[2]) : 16;

  // backtrace() lazy-initializes libgcc with a heap allocation; warm it up
  // before arming the hook.
  void* warm[4];
  backtrace(warm, 4);

  TcpCluster::Options opts;
  opts.num_nodes = 8;
  opts.loop_threads = 1;
  opts.num_clients = 16;
  opts.client_loop_threads = 4;
  opts.seed = 7;
  opts.config.replication = 3;
  opts.config.k_stability = 2;
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  opts.config.ack_batch_window = 100;
  TcpCluster cluster(opts);

  TcpCluster::LoadOptions load;
  load.duration = duration_ms * kMillisecond;
  load.value_size = 128;
  load.key_space = 4096;
  load.get_fraction = 0.0;
  load.pipeline = 8;

  g_armed.store(true);
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  g_armed.store(false);

  const uint64_t total = g_total.load();
  std::printf("ops=%llu total_allocs=%llu allocs/op=%.1f sampled=%llu (1/%d) dropped=%llu\n",
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(total),
              result.ops > 0 ? static_cast<double>(total) / static_cast<double>(result.ops) : 0,
              static_cast<unsigned long long>(g_sampled.load()), g_sample_every,
              static_cast<unsigned long long>(g_dropped.load()));

  std::vector<const StackSlot*> slots;
  for (const StackSlot& s : g_table) {
    if (s.count.load() > 0) {
      slots.push_back(&s);
    }
  }
  std::sort(slots.begin(), slots.end(), [](const StackSlot* a, const StackSlot* b) {
    return a->count.load() > b->count.load();
  });
  const double sampled = static_cast<double>(g_sampled.load());
  const size_t top = std::min<size_t>(slots.size(), 25);
  for (size_t i = 0; i < top; ++i) {
    const StackSlot& s = *slots[i];
    std::printf("---- #%zu  %.1f%% of sampled allocs (%llu samples)\n", i + 1,
                100.0 * static_cast<double>(s.count.load()) / sampled,
                static_cast<unsigned long long>(s.count.load()));
    char** syms = backtrace_symbols(const_cast<void* const*>(s.frames), s.depth);
    if (syms != nullptr) {
      for (int f = 0; f < s.depth; ++f) {
        std::printf("    %s\n", syms[f]);
      }
      std::free(syms);
    }
  }
  return 0;
}

}  // namespace
}  // namespace chainreaction

int main(int argc, char** argv) { return chainreaction::Main(argc, argv); }

// crx_telemetry_smoke — CI smoke test for the live telemetry endpoints.
//
// Boots a small ChainReaction cluster over loopback TCP (the kv_shell
// topology), runs a handful of puts/gets with tail-based slow-trace capture
// armed, then scrapes the TelemetryServer like a monitoring agent would:
//   /metrics       must expose Prometheus # TYPE headers and le-buckets
//   /metrics.json  must be non-empty JSON
//   /status        must report every node with its chain-role segment counts
//   /events        must contain flight-recorder entries
//   /traces        must list retained slow-put traces; one is fetched by id
//                  and must show the full client->head->chain->ack hop path
// Exits nonzero (with a message) on the first check that fails.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/net/address_book.h"
#include "src/net/sync_client.h"
#include "src/net/tcp_runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/ring/ring.h"

using namespace chainreaction;

namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  } else {
    std::printf("ok: %s\n", what);
  }
}

// Minimal blocking HTTP GET against loopback; returns the response body, or
// empty on any error (callers Check() the content).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::write(fd, req.data() + sent, req.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (resp.find("200") == std::string::npos) {
    std::fprintf(stderr, "GET %s -> %s\n", path.c_str(),
                 resp.substr(0, resp.find("\r\n")).c_str());
    return "";
  }
  const size_t split = resp.find("\r\n\r\n");
  return split == std::string::npos ? "" : resp.substr(split + 4);
}

}  // namespace

int main() {
  const uint32_t servers = 4;
  AddressBook book;
  std::vector<NodeId> ids;
  for (NodeId n = 0; n < servers; ++n) {
    ids.push_back(n);
  }
  const Ring ring(ids, 16, 3, 1);

  CrxConfig cfg;
  cfg.replication = 3;
  cfg.k_stability = 2;
  cfg.client_timeout = 2 * kSecond;
  cfg.slow_trace_us = 1;  // tail capture: every completed put is "slow"

  MetricsRegistry metrics;
  TraceCollector traces;

  std::vector<std::unique_ptr<TcpRuntime>> runtimes;
  std::vector<std::unique_ptr<ChainReactionNode>> nodes;
  for (NodeId n = 0; n < servers; ++n) {
    auto rt = std::make_unique<TcpRuntime>(&book);
    auto node = std::make_unique<ChainReactionNode>(n, cfg, ring);
    node->AttachEnv(rt->Register(n, node.get()));
    node->AttachObs(&metrics, &traces);
    rt->AttachMetrics(&metrics);
    nodes.push_back(std::move(node));
    runtimes.push_back(std::move(rt));
  }
  auto client_rt = std::make_unique<TcpRuntime>(&book);
  auto client = std::make_unique<ChainReactionClient>(kClientAddressBase, cfg, ring, 1);
  client->AttachEnv(client_rt->Register(kClientAddressBase, client.get()));
  client->AttachObs(&metrics, &traces);
  client_rt->AttachMetrics(&metrics);
  for (auto& rt : runtimes) {
    rt->Start();
  }
  client_rt->Start();

  TelemetryServer telemetry(0);  // ephemeral port
  Check(telemetry.ok(), "telemetry server binds");
  telemetry.AttachMetrics(&metrics);
  telemetry.AttachTraces(&traces);
  for (size_t i = 0; i < nodes.size(); ++i) {
    telemetry.AddRecorder("n" + std::to_string(i), nodes[i]->events());
  }
  telemetry.SetStatusProvider([&runtimes, &nodes]() {
    std::string out = "{\"nodes\":[";
    for (size_t i = 0; i < nodes.size(); ++i) {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      std::string status;
      runtimes[i]->Post([&]() {
        status = nodes[i]->StatusJson();
        std::lock_guard<std::mutex> lock(mu);
        done = true;
        cv.notify_one();
      });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      if (i > 0) {
        out += ',';
      }
      out += status;
    }
    out += "]}";
    return out;
  });
  telemetry.Start();
  const uint16_t port = telemetry.port();
  std::printf("telemetry on 127.0.0.1:%u\n", port);

  {
    SyncClient kv(client.get(), client_rt.get());
    for (int i = 0; i < 16; ++i) {
      kv.Put("smoke-key-" + std::to_string(i), "value-" + std::to_string(i));
    }
    for (int i = 0; i < 16; ++i) {
      const auto r = kv.Get("smoke-key-" + std::to_string(i));
      Check(r.found, "get finds a put key");
      if (!r.found) {
        break;
      }
    }
  }

  const std::string prom = HttpGet(port, "/metrics");
  Check(prom.find("# TYPE crx_client_put_latency_us histogram") != std::string::npos,
        "/metrics has the put-latency histogram TYPE header");
  Check(prom.find("_bucket{") != std::string::npos, "/metrics has le-buckets");
  Check(prom.find("crx_node_puts_applied") != std::string::npos,
        "/metrics has node counters");

  const std::string mjson = HttpGet(port, "/metrics.json");
  Check(!mjson.empty() && mjson.front() == '[' && mjson.find("\"name\"") != std::string::npos,
        "/metrics.json looks like a JSON instrument array");

  const std::string status = HttpGet(port, "/status");
  Check(status.find("\"nodes\":[") != std::string::npos, "/status lists nodes");
  size_t node_entries = 0;
  for (size_t at = 0; (at = status.find("\"node\":", at)) != std::string::npos; ++at) {
    ++node_entries;
  }
  Check(node_entries == servers, "/status has one entry per node");
  Check(status.find("\"segments\":") != std::string::npos,
        "/status reports chain-role segment counts");

  const std::string events = HttpGet(port, "/events");
  Check(events.find("# n0") != std::string::npos, "/events names each recorder");

  const std::string trace_list = HttpGet(port, "/traces");
  Check(!trace_list.empty(), "/traces lists trace ids");
  const size_t eol = trace_list.find('\n');
  std::string first_id = trace_list.substr(0, eol);
  // Lines are "<16-hex-id> ..." — take the leading token.
  const size_t sp = first_id.find(' ');
  if (sp != std::string::npos) {
    first_id = first_id.substr(0, sp);
  }
  Check(first_id.size() == 16, "/traces ids are 16 hex digits");

  const std::string trace = HttpGet(port, "/traces/" + first_id);
  Check(trace.find("client_put") != std::string::npos, "trace has the client_put hop");
  Check(trace.find("chain_apply") != std::string::npos, "trace has chain_apply hops");
  Check(trace.find("client_ack") != std::string::npos, "trace has the client_ack hop");
  Check(traces.retained_count() > 0, "slow puts were retained by the tail sampler");

  telemetry.Stop();
  client_rt->Stop();
  for (auto& rt : runtimes) {
    rt->Stop();
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d telemetry smoke check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("telemetry smoke: all checks passed\n");
  return 0;
}

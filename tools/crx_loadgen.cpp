// crx_loadgen — run any system / workload / fault combination from the
// command line and print a full report. The Swiss-army knife for exploring
// the simulated systems outside the fixed benchmark suite.
//
// Examples:
//   crx_loadgen --system chainreaction --workload B --servers 16 --clients 64
//   crx_loadgen --system craq --workload A --records 5000 --value-size 512
//   crx_loadgen --system chainreaction --dcs 3 --wan-ms 120 --check
//   crx_loadgen --system chainreaction --drop 0.02 --kill-at-ms 1000 --check
//
// With --loop-threads the tool switches from the simulator to a REAL
// loopback-TCP deployment (TcpCluster): all server node actors in one
// multi-loop runtime with ring-segment affinity, pipelined closed-loop
// clients, wall-clock timing:
//   crx_loadgen --loop-threads 4 --servers 8 --clients 16 --pipeline 8
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/harness/cluster.h"
#include "src/harness/experiment.h"
#include "src/net/tcp_cluster.h"
#include "src/obs/assembly.h"
#include "src/obs/window.h"

using namespace chainreaction;

namespace {

const char* kUsage = R"(crx_loadgen: drive a simulated cluster and report stats

  --system S       chainreaction | cr | craq | eventual | quorum   [chainreaction]
  --workload W     A | B | C | D                                   [B]
  --servers N      servers per DC                                  [12]
  --clients N      total closed-loop clients                       [48]
  --records N      preloaded keys                                  [1000]
  --value-size N   value bytes                                     [1024]
  --replication R  chain length                                    [3]
  --k N            k-stability ack position (chainreaction)        [2]
  --dcs N          datacenters (chainreaction only)                [1]
  --wan-ms N       inter-DC one-way latency, ms                    [80]
  --measure-ms N   measurement window, simulated ms                [1000]
  --warmup-ms N    warmup window, simulated ms                     [300]
  --think-us N     client think time, us                           [0]
  --drop P         message drop probability                        [0]
  --kill-at-ms T   crash one server T ms into the measurement      [off]
  --join-at-ms T   live-join a new server T ms into the measurement
                   (its ranges stream in, then the epoch flips)    [off]
  --drain-at-ms T  live-drain one server T ms into the measurement [off]
  --data-dir DIR   per-node WALs under DIR (chainreaction only)    [off]
  --fsync-mode M   always | batch | none                           [batch]
  --engine E       mem | disk value storage (needs --data-dir)     [mem]
  --cache-mb N     disk-engine resident-value budget per node, MB  [64]
  --crash-at-ms T  crash-with-durability one server at T ms        [off]
  --restart-at-ms T  restart it with recovery at T ms              [off]
  --seed N         RNG seed                                        [7]
  --check          attach the causal+ checker (chainreaction)
  --stats-every-ms N  print a windowed stats line every N sim ms   [off]
  --trace-every N  trace every Nth put; print the last trace       [off]
  --trace-prob P   probabilistic head sampling of puts             [0]
  --slow-trace-us N  tail sampling: always retain traces >= N us   [off]
  --dump-traces    assemble sampled traces into causal timelines and
                   print per-request critical paths after the run  [off]
  --http-port P    serve /metrics /status /events /traces
                   /criticalpath on P                              [off]
  --metrics        dump the full metrics registry after the run
  --help

TCP mode (real loopback sockets, wall-clock; chainreaction only):
  --loop-threads N server event loops in one consolidated runtime  [off]
  --pipeline N     outstanding ops per client session              [4]
  --get-fraction P fraction of gets (remainder puts)               [0.5]
  --ack-batch-us N cumulative-ack coalescing window, us            [100]
  (honors --servers --clients --records --value-size --replication --k
   --measure-ms --seed --trace-every --dump-traces --metrics)
)";

SystemKind ParseSystem(const std::string& s) {
  if (s == "chainreaction" || s == "crx") {
    return SystemKind::kChainReaction;
  }
  if (s == "cr" || s == "fawn") {
    return SystemKind::kCr;
  }
  if (s == "craq") {
    return SystemKind::kCraq;
  }
  if (s == "eventual" || s == "r1w1") {
    return SystemKind::kEventualOne;
  }
  if (s == "quorum") {
    return SystemKind::kQuorum;
  }
  std::fprintf(stderr, "unknown system '%s'\n%s", s.c_str(), kUsage);
  std::exit(2);
}

WorkloadSpec ParseWorkload(const std::string& w, uint64_t records, size_t value_size) {
  if (w == "A" || w == "a") {
    return WorkloadSpec::A(records, value_size);
  }
  if (w == "B" || w == "b") {
    return WorkloadSpec::B(records, value_size);
  }
  if (w == "C" || w == "c") {
    return WorkloadSpec::C(records, value_size);
  }
  if (w == "D" || w == "d") {
    return WorkloadSpec::D(records, value_size);
  }
  std::fprintf(stderr, "unknown workload '%s'\n%s", w.c_str(), kUsage);
  std::exit(2);
}

// Assembled critical paths: one aggregate line always, and the per-request
// timelines when --dump-traces asked for them.
void PrintCriticalPaths(const std::vector<CriticalPath>& cps, bool dump_each) {
  if (cps.empty()) {
    std::printf("critical-path none assembled\n");
    return;
  }
  double e2e = 0, net = 0, encode = 0, depwait = 0, kack = 0, coverage = 0;
  size_t complete = 0, gated = 0;
  for (const CriticalPath& cp : cps) {
    e2e += static_cast<double>(cp.e2e_us);
    net += static_cast<double>(cp.net_us);
    encode += static_cast<double>(cp.encode_us);
    depwait += static_cast<double>(cp.depwait_us);
    kack += static_cast<double>(cp.kack_us);
    coverage += cp.coverage;
    complete += cp.complete ? 1 : 0;
    gated += cp.depwait_us > 0 ? 1 : 0;
  }
  const double n = static_cast<double>(cps.size());
  std::printf("critical-path %zu assembled (%zu complete, %zu dep-gated); mean us: "
              "e2e=%.0f net=%.0f encode=%.0f depwait=%.0f kack=%.0f coverage=%.2f\n",
              cps.size(), complete, gated, e2e / n, net / n, encode / n, depwait / n,
              kack / n, coverage / n);
  if (!dump_each) {
    return;
  }
  constexpr size_t kMaxDumped = 16;
  for (size_t i = 0; i < cps.size() && i < kMaxDumped; ++i) {
    std::printf("%s", RenderCriticalPath(cps[i]).c_str());
  }
  if (cps.size() > kMaxDumped) {
    std::printf("  ... %zu more (raise --http-port and browse /criticalpath?id=)\n",
                cps.size() - kMaxDumped);
  }
}

// Real-socket deployment: every node actor in one consolidated multi-loop
// TcpRuntime, pipelined closed-loop clients, wall-clock measurement.
int RunTcpMode(const Flags& flags) {
  TcpCluster::Options opts;
  opts.num_nodes = static_cast<uint32_t>(flags.GetInt("servers", 8));
  opts.loop_threads = static_cast<uint32_t>(flags.GetInt("loop-threads", 1));
  opts.num_clients = static_cast<uint32_t>(flags.GetInt("clients", 16));
  opts.client_loop_threads = std::min<uint32_t>(4, opts.num_clients);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  opts.config.replication = static_cast<uint32_t>(flags.GetInt("replication", 3));
  opts.config.k_stability = static_cast<uint32_t>(flags.GetInt("k", 2));
  opts.config.num_dcs = 1;
  opts.config.client_timeout = 2 * kSecond;
  opts.config.ack_batch_window = flags.GetInt("ack-batch-us", 100);
  // Observability: sampled end-to-end tracing with a shared collector (one
  // process — the assembler merges it directly). --dump-traces without an
  // explicit rate samples every 64th put.
  MetricsRegistry metrics;
  TraceCollector traces;
  const bool dump_traces = flags.GetBool("dump-traces", false);
  opts.config.trace_sample_every = static_cast<uint32_t>(flags.GetInt("trace-every", 0));
  if (dump_traces && opts.config.trace_sample_every == 0) {
    opts.config.trace_sample_every = 64;
  }
  opts.metrics = &metrics;
  if (opts.config.trace_sample_every > 0) {
    opts.traces = &traces;
  }
  if (opts.loop_threads == 0 || opts.loop_threads > opts.num_nodes ||
      opts.num_nodes < opts.config.replication) {
    std::fprintf(stderr, "need servers >= replication and 1 <= loop-threads <= servers\n");
    return 2;
  }

  TcpCluster::LoadOptions load;
  load.duration = flags.GetInt("measure-ms", 1000) * kMillisecond;
  load.value_size = static_cast<uint32_t>(flags.GetInt("value-size", 1024));
  load.key_space = static_cast<uint32_t>(flags.GetInt("records", 1000));
  load.get_fraction = flags.GetDouble("get-fraction", 0.5);
  load.pipeline = static_cast<uint32_t>(flags.GetInt("pipeline", 4));

  TcpCluster cluster(opts);
  const TcpCluster::LoadResult result = cluster.RunClosedLoop(load);
  const uint64_t writev_calls = cluster.server_writev_calls();

  std::printf("== crx_loadgen report (TCP mode) ==\n");
  std::printf("cluster       %u node(s) in 1 runtime x %u event loop(s), R=%u k=%u\n",
              opts.num_nodes, opts.loop_threads, opts.config.replication,
              opts.config.k_stability);
  std::printf("load          %u client(s) x %u outstanding, %u B values, %u keys, "
              "%.0f%% gets\n",
              opts.num_clients, load.pipeline, load.value_size, load.key_space,
              100.0 * load.get_fraction);
  std::printf("throughput    %.0f ops/s (%llu ops, %llu failure(s))\n", result.ops_per_sec,
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(result.failures));
  std::printf("latency us    p50=%lld p95=%lld p99=%lld\n",
              static_cast<long long>(result.latency_us.P50()),
              static_cast<long long>(result.latency_us.P95()),
              static_cast<long long>(result.latency_us.P99()));
  std::printf("server io     frames=%llu writev=%llu (%.2f frames/writev)\n",
              static_cast<unsigned long long>(cluster.server_frames_sent()),
              static_cast<unsigned long long>(writev_calls),
              writev_calls > 0 ? static_cast<double>(cluster.server_writev_frames()) /
                                     static_cast<double>(writev_calls)
                               : 0.0);
  if (opts.traces != nullptr) {
    TraceAssembler assembler;
    assembler.MergeFrom(traces);
    PrintCriticalPaths(assembler.PublishAggregates(&metrics), dump_traces);
  }
  if (flags.GetBool("metrics", false)) {
    std::printf("== metrics ==\n%s", metrics.RenderText().c_str());
  }
  return result.failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv,
                   {"system", "workload", "servers", "clients", "records", "value-size",
                    "replication", "k", "dcs", "wan-ms", "measure-ms", "warmup-ms",
                    "think-us", "drop", "kill-at-ms", "join-at-ms", "drain-at-ms",
                    "data-dir", "fsync-mode",
                    "engine", "cache-mb",
                    "crash-at-ms", "restart-at-ms", "seed", "check", "stats-every-ms",
                    "trace-every", "trace-prob", "slow-trace-us", "dump-traces",
                    "http-port", "metrics",
                    "loop-threads", "pipeline", "get-fraction", "ack-batch-us",
                    "help"})) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (flags.Has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (flags.Has("loop-threads")) {
    return RunTcpMode(flags);
  }

  ClusterOptions opts;
  opts.system = ParseSystem(flags.GetString("system", "chainreaction"));
  opts.servers_per_dc = static_cast<uint32_t>(flags.GetInt("servers", 12));
  opts.num_dcs = static_cast<uint16_t>(flags.GetInt("dcs", 1));
  opts.clients_per_dc =
      static_cast<uint32_t>(flags.GetInt("clients", 48)) / std::max<uint16_t>(1, opts.num_dcs);
  opts.replication = static_cast<uint32_t>(flags.GetInt("replication", 3));
  opts.k_stability = static_cast<uint32_t>(flags.GetInt("k", 2));
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  opts.net.drop_probability = flags.GetDouble("drop", 0.0);
  opts.net.default_inter_site =
      LinkModel{flags.GetInt("wan-ms", 80) * kMillisecond, 2 * kMillisecond};
  opts.server_service = ServiceModel{10, 0.2, 5, 0, 0.2};
  if (opts.net.drop_probability > 0) {
    opts.client_timeout = 50 * kMillisecond;
  }
  opts.trace_sample_every = static_cast<uint32_t>(flags.GetInt("trace-every", 0));
  opts.trace_probability = flags.GetDouble("trace-prob", 0.0);
  opts.slow_trace_us = flags.GetInt("slow-trace-us", 0);
  opts.data_root = flags.GetString("data-dir", "");
  if (!ParseFsyncPolicy(flags.GetString("fsync-mode", "batch"), &opts.fsync_policy)) {
    std::fprintf(stderr, "bad --fsync-mode (want always|batch|none)\n%s", kUsage);
    return 2;
  }
  if (!opts.data_root.empty() && opts.system != SystemKind::kChainReaction) {
    std::fprintf(stderr, "--data-dir requires --system chainreaction\n");
    return 2;
  }
  if (!ParseStorageEngineKind(flags.GetString("engine", "mem"), &opts.engine)) {
    std::fprintf(stderr, "bad --engine (want mem|disk)\n%s", kUsage);
    return 2;
  }
  if (opts.engine == StorageEngineKind::kDisk && opts.data_root.empty()) {
    std::fprintf(stderr, "--engine disk requires --data-dir\n");
    return 2;
  }
  opts.engine_cache_bytes = static_cast<uint64_t>(flags.GetInt("cache-mb", 64)) << 20;

  const uint64_t records = static_cast<uint64_t>(flags.GetInt("records", 1000));
  const size_t value_size = static_cast<size_t>(flags.GetInt("value-size", 1024));

  Cluster cluster(opts);

  RunOptions run;
  run.spec = ParseWorkload(flags.GetString("workload", "B"), records, value_size);
  run.warmup = flags.GetInt("warmup-ms", 300) * kMillisecond;
  run.measure = flags.GetInt("measure-ms", 1000) * kMillisecond;
  run.think_time = flags.GetInt("think-us", 0);
  run.attach_checker =
      flags.GetBool("check", false) && opts.system == SystemKind::kChainReaction;

  // Preload up front (RunWorkload would otherwise do it) so the timers below
  // are offsets into the warmup+measure window, not into the preload.
  if (records > 0) {
    cluster.Preload(records, value_size);
    run.preload = false;
  }

  if (flags.Has("kill-at-ms")) {
    if (opts.system != SystemKind::kChainReaction) {
      std::fprintf(stderr, "--kill-at-ms requires --system chainreaction\n");
      return 2;
    }
    const Duration at = flags.GetInt("kill-at-ms", 1000) * kMillisecond;
    cluster.sim()->Schedule(run.warmup + at, [&cluster]() {
      cluster.KillServer(0, cluster.options().servers_per_dc / 2);
    });
  }

  // Planned elasticity under load: a join boots a brand-new node whose key
  // ranges stream in before the epoch flips; a drain streams a node's
  // ranges away before dropping it. Both run concurrently with the
  // workload — the report's 'elastic' line shows the outcome.
  const bool elastic = flags.Has("join-at-ms") || flags.Has("drain-at-ms");
  if (elastic && opts.system != SystemKind::kChainReaction) {
    std::fprintf(stderr, "--join-at-ms/--drain-at-ms require --system chainreaction\n");
    return 2;
  }
  if (flags.Has("join-at-ms")) {
    const Duration at = flags.GetInt("join-at-ms", 500) * kMillisecond;
    cluster.sim()->Schedule(run.warmup + at, [&cluster]() { cluster.AddJoiningServer(0); });
  }
  if (flags.Has("drain-at-ms")) {
    const Duration at = flags.GetInt("drain-at-ms", 500) * kMillisecond;
    cluster.sim()->Schedule(run.warmup + at, [&cluster]() {
      cluster.DrainServer(0, cluster.options().servers_per_dc / 3);
    });
  }

  // Crash-restart-with-recovery: the victim keeps its WAL, so the restart
  // replays local state and chain repair only sends the delta.
  const uint32_t victim = opts.servers_per_dc / 2;
  if (flags.Has("crash-at-ms")) {
    if (opts.data_root.empty()) {
      std::fprintf(stderr, "--crash-at-ms requires --data-dir\n");
      return 2;
    }
    const Duration at = flags.GetInt("crash-at-ms", 1000) * kMillisecond;
    cluster.sim()->Schedule(run.warmup + at, [&cluster, victim]() {
      cluster.CrashServer(0, victim);
    });
  }
  if (flags.Has("restart-at-ms")) {
    if (!flags.Has("crash-at-ms")) {
      std::fprintf(stderr, "--restart-at-ms requires --crash-at-ms\n");
      return 2;
    }
    const Duration at = flags.GetInt("restart-at-ms", 2000) * kMillisecond;
    cluster.sim()->Schedule(run.warmup + at, [&cluster, victim]() {
      const Status st = cluster.RestartServer(0, victim);
      if (!st.ok()) {
        std::fprintf(stderr, "restart failed: %s\n", st.ToString().c_str());
      }
    });
  }

  // Periodic metric dumps ride on a bounded set of pre-scheduled timers:
  // a self-rescheduling timer would keep the simulator's event queue
  // non-empty forever and hang the post-measurement drain. Each line is
  // windowed — per-interval deltas/rates from WindowedAggregator, not
  // cumulative totals.
  const int64_t stats_every_ms = flags.GetInt("stats-every-ms", 0);
  WindowedAggregator stats_window;
  if (stats_every_ms > 0) {
    const Duration interval = stats_every_ms * kMillisecond;
    const Duration horizon = run.warmup + run.measure;
    for (Duration t = interval; t <= horizon; t += interval) {
      cluster.sim()->Schedule(t, [&cluster, &stats_window]() {
        const WindowedView view =
            stats_window.Advance(cluster.metrics()->Snapshot(), cluster.sim()->Now());
        auto sum_delta = [&view](const char* name) {
          int64_t d = 0;
          for (const WindowedPoint& p : view.points) {
            if (p.name == name) {
              d += p.delta;
            }
          }
          return d;
        };
        Histogram put_lat;
        for (const WindowedPoint& p : view.points) {
          if (p.name == "crx_client_put_latency_us") {
            put_lat.Merge(p.interval);
          }
        }
        const double secs = static_cast<double>(view.interval_us) / 1e6;
        const int64_t puts = sum_delta("crx_node_puts_applied");
        std::printf("[t=%6lldms] puts=%lld (%.0f/s) reads=%lld gated=%lld "
                    "delivered=%lld dropped=%lld put_us{p50=%lld p99=%lld}\n",
                    static_cast<long long>(cluster.sim()->Now() / kMillisecond),
                    static_cast<long long>(puts),
                    secs > 0 ? static_cast<double>(puts) / secs : 0.0,
                    static_cast<long long>(sum_delta("crx_node_reads_served")),
                    static_cast<long long>(sum_delta("crx_node_gated_puts")),
                    static_cast<long long>(sum_delta("crx_net_messages_delivered")),
                    static_cast<long long>(sum_delta("crx_net_messages_dropped")),
                    static_cast<long long>(put_lat.P50()),
                    static_cast<long long>(put_lat.P99()));
      });
    }
  }

  // Aggregated telemetry endpoint for the whole simulated deployment —
  // scrapeable from another terminal while the (single-threaded) simulation
  // runs, since the registry/collector/recorders are thread-safe to read.
  std::unique_ptr<TelemetryServer> telemetry;
  const uint16_t http_port = static_cast<uint16_t>(flags.GetInt("http-port", 0));
  if (http_port != 0) {
    telemetry = cluster.ServeTelemetry(http_port);
    if (!telemetry) {
      std::fprintf(stderr, "cannot bind --http-port %u\n", http_port);
      return 2;
    }
    std::printf("telemetry on http://127.0.0.1:%u/ (/metrics /status /events /traces)\n",
                telemetry->port());
  }

  const RunResult result = RunWorkload(&cluster, run);

  std::printf("== crx_loadgen report ==\n");
  std::printf("system        %s\n", SystemKindName(opts.system));
  std::printf("workload      %s (%llu records x %zu B)\n", run.spec.name.c_str(),
              static_cast<unsigned long long>(records), value_size);
  std::printf("cluster       %u server(s)/DC x %u DC(s), R=%u k=%u, %zu clients\n",
              opts.servers_per_dc, opts.num_dcs, opts.replication, opts.k_stability,
              cluster.num_clients());
  std::printf("throughput    %.0f ops/s\n", result.throughput_ops_sec);
  std::printf("reads         %s\n", result.stats.read_latency.Summary().c_str());
  std::printf("writes        %s\n", result.stats.write_latency.Summary().c_str());
  std::printf("not-found     %llu\n", static_cast<unsigned long long>(result.stats.not_found));
  std::printf("network       delivered=%llu dropped=%llu bytes=%llu\n",
              static_cast<unsigned long long>(cluster.net()->messages_delivered()),
              static_cast<unsigned long long>(cluster.net()->messages_dropped()),
              static_cast<unsigned long long>(cluster.net()->bytes_sent()));

  if (opts.system == SystemKind::kChainReaction) {
    const auto by_pos = cluster.ReadsByPosition();
    uint64_t total = 0;
    for (uint64_t c : by_pos) {
      total += c;
    }
    std::printf("read spread  ");
    for (size_t i = 0; i < by_pos.size(); ++i) {
      std::printf(" pos%zu=%.1f%%", i + 1,
                  total == 0 ? 0.0 : 100.0 * static_cast<double>(by_pos[i]) /
                                         static_cast<double>(total));
    }
    std::printf("\n");
    const Histogram dep_wait = cluster.MergedDepWaitHist();
    std::printf("gated writes  %llu (wait us: mean=%.0f p50=%lld p95=%lld p99=%lld)\n",
                static_cast<unsigned long long>(cluster.TotalDepWaits()), dep_wait.Mean(),
                static_cast<long long>(dep_wait.P50()), static_cast<long long>(dep_wait.P95()),
                static_cast<long long>(dep_wait.P99()));
    if (!opts.data_root.empty()) {
      const MetricsSnapshot snap = cluster.metrics()->Snapshot();
      std::printf("wal           appends=%lld fsyncs=%lld bytes=%lld (fsync=%s)\n",
                  static_cast<long long>(snap.SumCounters("crx_wal_appends")),
                  static_cast<long long>(snap.SumCounters("crx_wal_fsyncs")),
                  static_cast<long long>(snap.SumCounters("crx_wal_bytes")),
                  FsyncPolicyName(opts.fsync_policy));
      if (flags.Has("restart-at-ms")) {
        const ChainReactionNode* node = cluster.crx_node(0, victim);
        const WalReplayStats& rs = node->last_recovery_stats();
        std::printf("recovery      %llu record(s), %llu segment(s), %lld us replay%s\n",
                    static_cast<unsigned long long>(rs.records),
                    static_cast<unsigned long long>(rs.segments_replayed),
                    static_cast<long long>(node->last_recovery_replay_us()),
                    rs.tail_truncated ? " (torn tail truncated)" : "");
      }
    }
    if (elastic) {
      std::printf("elastic       migrations completed=%llu aborted=%llu epoch=%llu "
                  "nodes=%llu\n",
                  static_cast<unsigned long long>(cluster.coordinator(0)->completed()),
                  static_cast<unsigned long long>(cluster.coordinator(0)->aborted()),
                  static_cast<unsigned long long>(cluster.membership(0)->epoch()),
                  static_cast<unsigned long long>(cluster.membership(0)->nodes().size()));
    }
    std::string diag;
    std::printf("convergence   %s\n", cluster.CheckConvergence(&diag) ? "OK" : diag.c_str());
    if (opts.trace_sample_every > 0) {
      TraceCollector::Trace trace;
      if (cluster.traces()->Latest(&trace)) {
        std::printf("traces        %zu collected; latest:\n%s",
                    cluster.traces()->size(), TraceCollector::Render(trace).c_str());
      }
    }
    if (opts.slow_trace_us > 0) {
      const std::vector<uint64_t> slow = cluster.traces()->RetainedIds();
      std::printf("slow traces   %zu retained (latency >= %lld us)\n", slow.size(),
                  static_cast<long long>(opts.slow_trace_us));
      TraceCollector::Trace trace;
      if (!slow.empty() && cluster.traces()->Find(slow.back(), &trace)) {
        std::printf("slowest-retained hop-by-hop:\n%s", TraceCollector::Render(trace).c_str());
      }
    }
    if (flags.GetBool("dump-traces", false)) {
      TraceAssembler assembler;
      assembler.MergeFrom(*cluster.traces());
      PrintCriticalPaths(assembler.PublishAggregates(cluster.metrics()),
                         /*dump_each=*/true);
    }
  }
  if (flags.GetBool("metrics", false)) {
    std::printf("== metrics ==\n%s", cluster.metrics()->RenderText().c_str());
  }
  if (run.attach_checker) {
    std::printf("causal+       %llu violation(s)%s\n",
                static_cast<unsigned long long>(result.checker_violations),
                result.checker_violations == 0 ? "" : " — see diagnostics below");
    for (const std::string& d : result.checker_diagnostics) {
      std::printf("  %s\n", d.c_str());
    }
  }
  return result.checker_violations == 0 ? 0 : 1;
}

#!/usr/bin/env bash
# Tier-1 gate: configure, build everything with -Wall -Wextra, run the full
# test suite. Run from anywhere; builds into <repo>/build.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "${repo}" -B "${build}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"
cmake --build "${build}" -j "${jobs}"
ctest --test-dir "${build}" --output-on-failure -j "${jobs}"

// Interactive shell against a ChainReaction cluster running over loopback
// TCP — a tiny "redis-cli" for the datastore. Commands:
//
//   put <key> <value>     write (shows assigned version + carried deps)
//   mget <k1> <k2> ...    causally consistent snapshot read
//   get <key>             read (shows version, chain position, stability)
//   meta <key>            client metadata for the key
//   session               accessed-set summary
//   stats [filter]        windowed metrics since the last 'stats' call
//   stats --cumulative [filter]   full cumulative registry dump
//   stats reset           forget the window baseline
//   wal                   per-node WAL counters + recovery stats (durability)
//   trace                 render the last put's end-to-end trace
//   reset                 forget session state
//   quit
//
// Elastic membership (live, no restart):
//   join [weight]         boot a new node in its own runtime and stream its
//                         key ranges to it before the epoch flips
//   drain <node>          migrate a node's ranges away, then drop it
//   rebalance <node> <w>  change a node's vnode weight (moves ring segments)
//   ring                  current epoch + member nodes and weights
//
//   $ ./build/examples/kv_shell [--servers N] [--replication R] [--k K]
//                               [--loop-threads L]
//                               [--data-dir DIR] [--fsync-mode always|batch|none]
//                               [--http-port P]
//
// All server nodes live in ONE consolidated TcpRuntime whose --loop-threads
// event loops host them with ring-segment affinity (ring neighbors share a
// loop, so most down-chain hops stay on one thread).
//
// With --http-port the process serves the telemetry endpoints (/metrics,
// /metrics.json, /metrics/window, /traces, /events, /status) on loopback
// port P, aggregated over every in-process node.
//
// With --data-dir every node write-ahead-logs to DIR/n<id>/ and recovers
// from it on startup, so a killed shell restarted on the same DIR comes
// back with its data.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/admin/migration.h"
#include "src/common/flags.h"
#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/net/address_book.h"
#include "src/net/sync_client.h"
#include "src/net/tcp_cluster.h"
#include "src/net/tcp_runtime.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/obs/window.h"
#include "src/ring/membership.h"
#include "src/ring/ring.h"
#include "src/wal/wal.h"

using namespace chainreaction;

namespace {
const char* kUsage =
    "usage: kv_shell [--servers N] [--replication R] [--k K] [--loop-threads L]\n"
    "                [--data-dir DIR] [--fsync-mode always|batch|none]\n"
    "                [--engine mem|disk] [--cache-mb MB] [--http-port P]\n";
}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv,
                   {"servers", "replication", "k", "loop-threads", "data-dir", "fsync-mode",
                    "engine", "cache-mb", "http-port", "help"})) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (flags.Has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const uint32_t servers = static_cast<uint32_t>(flags.GetInt("servers", 6));
  const uint32_t replication = static_cast<uint32_t>(flags.GetInt("replication", 3));
  const uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 2));
  const uint32_t loop_threads =
      static_cast<uint32_t>(flags.GetInt("loop-threads", 1));
  if (loop_threads == 0 || loop_threads > servers) {
    std::fprintf(stderr, "need 1 <= loop-threads <= servers\n");
    return 1;
  }
  const std::string data_dir = flags.GetString("data-dir", "");
  const uint16_t http_port = static_cast<uint16_t>(flags.GetInt("http-port", 0));
  WalOptions wal_options;
  if (!ParseFsyncPolicy(flags.GetString("fsync-mode", "batch"), &wal_options.policy)) {
    std::fprintf(stderr, "bad --fsync-mode (want always|batch|none)\n%s", kUsage);
    return 2;
  }
  StorageEngineKind engine = StorageEngineKind::kMem;
  if (!ParseStorageEngineKind(flags.GetString("engine", "mem"), &engine)) {
    std::fprintf(stderr, "bad --engine (want mem|disk)\n%s", kUsage);
    return 2;
  }
  if (engine == StorageEngineKind::kDisk && data_dir.empty()) {
    std::fprintf(stderr, "--engine disk requires --data-dir\n%s", kUsage);
    return 2;
  }
  if (replication > servers || k > replication || k == 0) {
    std::fprintf(stderr, "need servers >= R >= k >= 1\n");
    return 1;
  }

  AddressBook book;
  std::vector<NodeId> ids;
  for (NodeId n = 0; n < servers; ++n) {
    ids.push_back(n);
  }
  const Ring ring(ids, 16, replication, 1);

  CrxConfig cfg;
  cfg.replication = replication;
  cfg.k_stability = k;
  cfg.client_timeout = 2 * kSecond;
  cfg.trace_sample_every = 1;  // trace every put; 'trace' renders the last one
  cfg.engine = engine;
  cfg.engine_cache_bytes = static_cast<uint64_t>(flags.GetInt("cache-mb", 64)) << 20;

  // One registry + trace collector shared by every runtime in this process;
  // 'stats' snapshots it while the loop threads keep updating.
  MetricsRegistry metrics;
  TraceCollector traces;

  // One consolidated server runtime; node actors are sharded across its
  // event loops by ring position.
  const std::vector<uint32_t> shard_of =
      TcpCluster::AssignShardsByRingOrder(ring, servers, loop_threads);
  auto server_rt = std::make_unique<TcpRuntime>(&book, loop_threads);
  std::vector<std::unique_ptr<ChainReactionNode>> nodes;
  for (NodeId n = 0; n < servers; ++n) {
    auto node = std::make_unique<ChainReactionNode>(n, cfg, ring);
    if (!data_dir.empty()) {
      const std::string node_dir = data_dir + "/n" + std::to_string(n);
      // Recover first (torn-tail repair needs the newest segment), then
      // open the WAL for new writes.
      Status st = node->RecoverFrom(node_dir);
      if (!st.ok()) {
        std::fprintf(stderr, "node %llu: recovery failed: %s\n",
                     static_cast<unsigned long long>(n), st.ToString().c_str());
        return 1;
      }
      st = node->EnableDurability(node_dir, wal_options);
      if (!st.ok()) {
        std::fprintf(stderr, "node %llu: cannot open wal: %s\n",
                     static_cast<unsigned long long>(n), st.ToString().c_str());
        return 1;
      }
      const WalReplayStats& rs = node->last_recovery_stats();
      if (rs.records > 0 || rs.segments_replayed > 0) {
        std::printf("node %llu: recovered %llu record(s) from %llu segment(s) in %lld us%s\n",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(rs.records),
                    static_cast<unsigned long long>(rs.segments_replayed),
                    static_cast<long long>(node->last_recovery_replay_us()),
                    rs.tail_truncated ? " (torn tail truncated)" : "");
      }
    }
    node->AttachEnv(server_rt->Register(n, node.get(), shard_of[n]));
    node->AttachObs(&metrics, &traces);
    nodes.push_back(std::move(node));
  }
  server_rt->AttachMetrics(&metrics);

  // Elastic membership: the admin plane lives on the server runtime's first
  // loop. The shell client subscribes as a listener so it follows epoch
  // flips live.
  constexpr Address kShellMembershipAddr = kServiceAddressBase + 1024;
  constexpr Address kShellCoordinatorAddr = kServiceAddressBase + 2048;
  MembershipService membership(ids, 16, replication);
  membership.AttachEnv(server_rt->Register(kShellMembershipAddr, &membership, 0));
  MigrationCoordinator::Options copt;
  copt.vnodes = 16;
  copt.replication = replication;
  copt.self = kShellCoordinatorAddr;
  copt.membership = kShellMembershipAddr;
  MigrationCoordinator coordinator(copt);
  coordinator.AttachEnv(server_rt->Register(kShellCoordinatorAddr, &coordinator, 0));
  coordinator.AttachObs(&metrics);
  coordinator.Seed(1, ids, {});
  membership.AddListener(kShellCoordinatorAddr);
  membership.AddListener(kClientAddressBase);

  auto client_rt = std::make_unique<TcpRuntime>(&book);
  auto client = std::make_unique<ChainReactionClient>(kClientAddressBase, cfg, ring, 1);
  client->AttachEnv(client_rt->Register(kClientAddressBase, client.get()));
  client->AttachObs(&metrics, &traces);
  client_rt->AttachMetrics(&metrics);
  server_rt->Start();
  client_rt->Start();
  SyncClient kv(client.get(), client_rt.get());

  // Nodes joined at runtime, each in its own runtime (a separate process
  // equivalent; peers find it through the shared address book).
  std::vector<std::unique_ptr<TcpRuntime>> joined_rts;
  std::vector<std::unique_ptr<ChainReactionNode>> joined_nodes;
  NodeId next_node_id = servers;

  // Coordinator state is loop-owned: run admin calls on its loop thread and
  // hand the result back.
  auto run_plan = [&](std::function<uint64_t()> fn) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    uint64_t id = 0;
    server_rt->PostTo(kShellCoordinatorAddr, [&]() {
      id = fn();
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return id;
  };
  auto await_migration = [&]() {
    for (int i = 0; i < 3000 && !coordinator.idle(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!coordinator.idle()) {
      std::printf("migration still running (check 'ring' / /status later)\n");
      return;
    }
    std::printf("done: epoch=%llu completed=%llu aborted=%llu\n",
                static_cast<unsigned long long>(coordinator.observed_epoch()),
                static_cast<unsigned long long>(coordinator.completed()),
                static_cast<unsigned long long>(coordinator.aborted()));
  };

  // Optional HTTP telemetry: one aggregated endpoint for every in-process
  // node. /status posts into each node's loop thread because node state is
  // loop-owned.
  std::unique_ptr<TelemetryServer> telemetry;
  if (http_port != 0) {
    telemetry = std::make_unique<TelemetryServer>(http_port);
    if (!telemetry->ok()) {
      std::fprintf(stderr, "cannot bind --http-port %u\n", http_port);
      return 1;
    }
    telemetry->AttachMetrics(&metrics);
    telemetry->AttachTraces(&traces);
    for (size_t i = 0; i < nodes.size(); ++i) {
      telemetry->AddRecorder("n" + std::to_string(i), nodes[i]->events());
    }
    telemetry->SetStatusProvider([&server_rt, &nodes]() {
      std::string out = "{\"nodes\":[";
      for (size_t i = 0; i < nodes.size(); ++i) {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::string status;
        // Node state is loop-owned; post into the node's own event loop.
        server_rt->PostTo(static_cast<Address>(i), [&]() {
          status = nodes[i]->StatusJson();
          std::lock_guard<std::mutex> lock(mu);
          done = true;
          cv.notify_one();
        });
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done; });
        if (i > 0) {
          out += ',';
        }
        out += status;
      }
      out += "]}";
      return out;
    });
    telemetry->Start();
    std::printf("telemetry on http://127.0.0.1:%u/ (/metrics /status /events /traces)\n",
                telemetry->port());
  }

  // Windowed `stats`: diffs the cumulative registry against the last call.
  // Times are relative to shell start so the first window reads sensibly.
  WindowedAggregator stats_window;
  const int64_t stats_t0 = TelemetryServer::WallMicros();

  std::printf(
      "chainreaction shell — %u servers over loopback TCP (%u event loop%s), R=%u, k=%u\n",
      servers, loop_threads, loop_threads == 1 ? "" : "s", replication, k);
  if (!data_dir.empty()) {
    std::printf("durability on — data dir %s, fsync=%s\n", data_dir.c_str(),
                FsyncPolicyName(wal_options.policy));
  }
  std::printf("type 'help' for commands\n");

  std::string line;
  while (true) {
    std::printf("crx> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      std::printf(
          "put <key> <value> | get <key> | mget <k>... | meta <key> | session | "
          "stats [--cumulative] [filter] | stats reset | wal | trace | reset | quit\n"
          "admin: join [weight] | drain <node> | rebalance <node> <weight> | ring\n");
      continue;
    }
    if (cmd == "ring") {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      std::string desc;
      server_rt->PostTo(kShellMembershipAddr, [&]() {
        desc = "epoch=" + std::to_string(membership.epoch()) + " nodes=[";
        const std::vector<NodeId>& members = membership.nodes();
        for (size_t i = 0; i < members.size(); ++i) {
          desc += (i > 0 ? " " : "") + std::to_string(members[i]) + ":w" +
                  std::to_string(membership.ring().WeightOf(members[i]));
        }
        desc += "]";
        std::lock_guard<std::mutex> lock(mu);
        done = true;
        cv.notify_one();
      });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      std::printf("%s\n", desc.c_str());
      continue;
    }
    if (cmd == "join") {
      uint32_t weight = 0;
      in >> weight;  // optional; 0 = default vnode count
      const NodeId id = next_node_id++;
      auto rt = std::make_unique<TcpRuntime>(&book);
      auto node = std::make_unique<ChainReactionNode>(id, cfg, ring);
      if (!data_dir.empty()) {
        const Status st = node->EnableDurability(data_dir + "/n" + std::to_string(id),
                                                 wal_options);
        if (!st.ok()) {
          std::printf("cannot open wal for node %llu: %s\n",
                      static_cast<unsigned long long>(id), st.ToString().c_str());
          next_node_id--;
          continue;
        }
      }
      node->AttachObs(&metrics, &traces);
      node->AttachEnv(rt->Register(id, node.get()));
      rt->Start();
      joined_nodes.push_back(std::move(node));
      joined_rts.push_back(std::move(rt));
      std::printf("node %llu booted; streaming its key ranges...\n",
                  static_cast<unsigned long long>(id));
      if (run_plan([&]() { return coordinator.StartJoin(id, weight); }) == 0) {
        std::printf("join rejected (already a member?)\n");
        continue;
      }
      await_migration();
      continue;
    }
    if (cmd == "drain") {
      NodeId target = 0;
      if (!(in >> target)) {
        std::printf("usage: drain <node>\n");
        continue;
      }
      if (run_plan([&]() { return coordinator.StartDrain(target); }) == 0) {
        std::printf("drain rejected (unknown node, or it would drop below R?)\n");
        continue;
      }
      std::printf("draining node %llu...\n", static_cast<unsigned long long>(target));
      await_migration();
      continue;
    }
    if (cmd == "rebalance") {
      NodeId target = 0;
      uint32_t weight = 0;
      if (!(in >> target >> weight) || weight == 0) {
        std::printf("usage: rebalance <node> <weight>\n");
        continue;
      }
      if (run_plan([&]() { return coordinator.StartRebalance(target, weight); }) == 0) {
        std::printf("rebalance rejected (unknown node or unchanged weight?)\n");
        continue;
      }
      std::printf("rebalancing node %llu to weight %u...\n",
                  static_cast<unsigned long long>(target), weight);
      await_migration();
      continue;
    }
    if (cmd == "wal") {
      if (data_dir.empty()) {
        std::printf("(durability off — start with --data-dir)\n");
        continue;
      }
      for (const auto& node : nodes) {
        const Wal* wal = node->wal();
        const WalReplayStats& rs = node->last_recovery_stats();
        std::printf("node %llu: appends=%llu fsyncs=%llu bytes=%llu active_seg=%llu "
                    "recovered=%llu\n",
                    static_cast<unsigned long long>(node->id()),
                    static_cast<unsigned long long>(wal->appends()),
                    static_cast<unsigned long long>(wal->fsyncs()),
                    static_cast<unsigned long long>(wal->bytes_written()),
                    static_cast<unsigned long long>(wal->active_seq()),
                    static_cast<unsigned long long>(rs.records));
      }
      continue;
    }
    if (cmd == "stats") {
      std::string arg;
      in >> arg;
      if (arg == "reset") {
        stats_window.Reset();
        std::printf("stats window reset — next 'stats' reports since now\n");
        continue;
      }
      if (arg == "--cumulative") {
        std::string filter;
        in >> filter;
        std::printf("%s", RenderTextFiltered(metrics.Snapshot(), filter).c_str());
        continue;
      }
      // Default: windowed view since the previous 'stats' (or 'stats reset').
      const std::string filter = arg;  // optional substring filter
      const WindowedView view =
          stats_window.Advance(metrics.Snapshot(), TelemetryServer::WallMicros() - stats_t0);
      const std::string text = view.RenderText();
      if (filter.empty()) {
        std::printf("%s", text.c_str());
      } else {
        std::istringstream lines(text);
        std::string ln;
        while (std::getline(lines, ln)) {
          if (ln.find(filter) != std::string::npos || ln.rfind("window", 0) == 0) {
            std::printf("%s\n", ln.c_str());
          }
        }
      }
      continue;
    }
    if (cmd == "trace") {
      TraceCollector::Trace t;
      if (traces.Latest(&t)) {
        std::printf("%s", TraceCollector::Render(t).c_str());
      } else {
        std::printf("(no traces yet — do a put first)\n");
      }
      continue;
    }
    if (cmd == "put") {
      std::string key, value;
      in >> key;
      std::getline(in, value);
      if (!value.empty() && value.front() == ' ') {
        value.erase(0, 1);
      }
      if (key.empty()) {
        std::printf("usage: put <key> <value>\n");
        continue;
      }
      const auto r = kv.Put(key, value);
      std::printf("OK version=%s deps_carried=%zu\n", r.version.ToString().c_str(),
                  r.deps.size());
      continue;
    }
    if (cmd == "get") {
      std::string key;
      in >> key;
      if (key.empty()) {
        std::printf("usage: get <key>\n");
        continue;
      }
      const auto r = kv.Get(key);
      if (!r.found) {
        std::printf("(nil)\n");
      } else {
        std::printf("\"%s\"  version=%s position=%u\n", r.value.c_str(),
                    r.version.ToString().c_str(), r.answered_by_position);
      }
      continue;
    }
    if (cmd == "mget") {
      std::vector<Key> keys;
      std::string k2;
      while (in >> k2) {
        keys.push_back(k2);
      }
      if (keys.empty()) {
        std::printf("usage: mget <key> <key> ...\n");
        continue;
      }
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      ChainReactionClient::MultiGetResult result;
      client_rt->Post([&]() {
        client->MultiGet(keys, [&](const ChainReactionClient::MultiGetResult& r) {
          std::lock_guard<std::mutex> lock(mu);
          result = r;
          done = true;
          cv.notify_one();
        });
      });
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done; });
      }
      std::printf("snapshot in %u round%s:\n", result.rounds, result.rounds == 1 ? "" : "s");
      for (size_t i = 0; i < keys.size(); ++i) {
        const auto& r = result.results[i];
        if (r.found) {
          std::printf("  %s = \"%s\"  version=%s\n", keys[i].c_str(), r.value.c_str(),
                      r.version.ToString().c_str());
        } else {
          std::printf("  %s = (nil)\n", keys[i].c_str());
        }
      }
      continue;
    }
    if (cmd == "meta") {
      std::string key;
      in >> key;
      Version v;
      ChainIndex idx = 0;
      if (client->LookupMetadata(key, &v, &idx)) {
        std::printf("version=%s chain_index=%u (may read %u of %u nodes)\n",
                    v.ToString().c_str(), idx, idx, replication);
      } else {
        std::printf("(no metadata — reads may go to any of the %u chain nodes)\n",
                    replication);
      }
      continue;
    }
    if (cmd == "session") {
      std::printf("accessed-set: %zu entr%s (~%zu bytes on next put), metadata for %zu keys\n",
                  client->accessed_set_size(), client->accessed_set_size() == 1 ? "y" : "ies",
                  client->AccessedSetBytes(), client->metadata_entries());
      continue;
    }
    if (cmd == "reset") {
      client->ResetSession();
      std::printf("session state cleared\n");
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }

  if (telemetry) {
    telemetry->Stop();  // before the loops: /status posts into them
  }
  client_rt->Stop();
  for (auto& rt : joined_rts) {
    rt->Stop();
  }
  server_rt->Stop();
  std::printf("bye\n");
  return 0;
}

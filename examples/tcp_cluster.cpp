// Real-socket deployment: six ChainReaction server "processes" (one
// TcpRuntime each) plus a client process, all exchanging length-prefixed
// frames over loopback TCP. The exact same protocol code as the simulated
// examples — only the Env implementation differs.
//
//   $ ./build/examples/tcp_cluster
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/chainreaction_client.h"
#include "src/core/chainreaction_node.h"
#include "src/net/address_book.h"
#include "src/net/sync_client.h"
#include "src/net/tcp_runtime.h"
#include "src/ring/ring.h"

using namespace chainreaction;

int main() {
  constexpr uint32_t kServers = 6;
  AddressBook book;

  std::vector<NodeId> ids;
  for (NodeId n = 0; n < kServers; ++n) {
    ids.push_back(n);
  }
  const Ring ring(ids, 16, /*replication=*/3, 1);

  CrxConfig cfg;
  cfg.replication = 3;
  cfg.k_stability = 2;
  cfg.client_timeout = 2 * kSecond;

  std::printf("== ChainReaction over loopback TCP ==\n\n");

  std::vector<std::unique_ptr<TcpRuntime>> runtimes;
  std::vector<std::unique_ptr<ChainReactionNode>> nodes;
  for (NodeId n = 0; n < kServers; ++n) {
    auto rt = std::make_unique<TcpRuntime>(&book);
    auto node = std::make_unique<ChainReactionNode>(n, cfg, ring);
    node->AttachEnv(rt->Register(n, node.get()));
    std::printf("server %u listening on 127.0.0.1:%u\n", n, rt->port());
    nodes.push_back(std::move(node));
    runtimes.push_back(std::move(rt));
  }

  auto client_rt = std::make_unique<TcpRuntime>(&book);
  auto client = std::make_unique<ChainReactionClient>(kClientAddressBase, cfg, ring, 7);
  client->AttachEnv(client_rt->Register(kClientAddressBase, client.get()));
  std::printf("client listening on 127.0.0.1:%u\n\n", client_rt->port());

  for (auto& rt : runtimes) {
    rt->Start();
  }
  client_rt->Start();

  SyncClient kv(client.get(), client_rt.get());

  const auto put = kv.Put("user:42:name", "Ada Lovelace");
  std::printf("put user:42:name -> version %s\n", put.version.ToString().c_str());
  const auto put2 = kv.Put("user:42:bio", "first programmer");
  std::printf("put user:42:bio  -> version %s (carried %zu dep)\n",
              put2.version.ToString().c_str(), put2.deps.size());

  for (int i = 0; i < 4; ++i) {
    const auto get = kv.Get("user:42:name");
    std::printf("get user:42:name -> '%s' (chain position %u)\n", get.value.c_str(),
                get.answered_by_position);
  }

  uint64_t frames = client_rt->frames_sent();
  for (const auto& rt : runtimes) {
    frames += rt->frames_sent();
  }
  std::printf("\n%llu TCP frames crossed loopback sockets.\n",
              static_cast<unsigned long long>(frames));

  client_rt->Stop();
  for (auto& rt : runtimes) {
    rt->Stop();
  }
  std::printf("clean shutdown.\n");
  return 0;
}

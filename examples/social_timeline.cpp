// The access-control anomaly that motivates causal consistency (the classic
// scenario from the COPS and ChainReaction papers):
//
//   1. Alice removes her boss from her photo ACL,
//   2. then posts an embarrassing photo.
//
// Under causal+ consistency nobody can observe the photo together with the
// old ACL, because the post causally depends on the ACL change. Under the
// eventual (R=1/W=1) baseline a replica that misses the ACL update (here:
// one replication message lost on a 5%-lossy network, never repaired
// because W=1 writes do not wait for acks) keeps serving the OLD ACL while
// the photo is already visible — exactly the anomaly.
//
// Both systems run over the SAME lossy network; ChainReaction''s client
// retries and chain re-propagation keep it both live and causal.
//
//   $ ./build/examples/social_timeline
#include <cstdio>
#include <functional>
#include <string>

#include "src/harness/cluster.h"

using namespace chainreaction;

namespace {

// Alice: acl=visible, acl=hidden, photo=posted (each after the previous
// ack). Boss: polls (photo, acl) every 150us. Returns true if any poll
// observed the photo together with the old ACL.
bool RunTrial(SystemKind system, uint64_t seed) {
  ClusterOptions opts;
  opts.system = system;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 2;
  opts.seed = seed;
  opts.net.intra_site = LinkModel{100, 500};
  opts.net.drop_probability = 0.05;   // the same lossy network for both systems
  opts.client_timeout = 50 * kMillisecond;
  Cluster cluster(opts);

  KvClient* alice = cluster.client(0);
  KvClient* boss = cluster.client(1);

  bool anomaly = false;
  bool photo_posted = false;

  alice->Put("acl", "boss-can-see", [&](const KvPutResult&) {
    alice->Put("acl", "boss-CANNOT-see", [&](const KvPutResult&) {
      alice->Put("photo", "embarrassing.jpg", [&](const KvPutResult&) {
        photo_posted = true;
      });
    });
  });

  int polls_left = 120;
  std::function<void()> poll = [&]() {
    if (polls_left-- <= 0) {
      return;
    }
    boss->Get("photo", [&](const KvGetResult& photo_result) {
      // Copy: the outer callback's frame is gone when the inner one runs.
      boss->Get("acl", [&, photo = photo_result](const KvGetResult& acl) {
        if (photo.found && photo.value == "embarrassing.jpg" && acl.found &&
            acl.value == "boss-can-see") {
          anomaly = true;
        }
        cluster.client_env(1)->Schedule(150, poll);
      });
    });
  };
  poll();

  cluster.sim()->Run();
  (void)photo_posted;
  return anomaly;
}

}  // namespace

int main() {
  std::printf("== The ACL/photo anomaly: eventual consistency vs causal+ ==\n\n");
  const int trials = 200;

  int eventual_anomalies = 0;
  int crx_anomalies = 0;
  for (int t = 0; t < trials; ++t) {
    if (RunTrial(SystemKind::kEventualOne, 1000 + t)) {
      eventual_anomalies++;
    }
    if (RunTrial(SystemKind::kChainReaction, 1000 + t)) {
      crx_anomalies++;
    }
  }

  std::printf("EVENTUAL-R1W1 : boss saw the photo with the old ACL in %3d / %d trials\n",
              eventual_anomalies, trials);
  std::printf("CHAINREACTION : boss saw the photo with the old ACL in %3d / %d trials\n",
              crx_anomalies, trials);
  std::printf("\nChainReaction's write gating (dependencies must be DC-Write-Stable before\n"
              "a dependent write becomes visible) makes the anomaly impossible, while the\n"
              "eventual store races the two writes to different replicas.\n");
  return crx_anomalies == 0 ? 0 : 1;
}

// Geo-replication walkthrough: a photo-album application spanning two
// datacenters.
//
// A user in DC 0 uploads a photo and then links it into her album index.
// A follower in DC 1 keeps polling the album; whenever the album references
// the new photo, the photo itself MUST already be readable in DC 1 — the
// geo replicator applies the album update only after its dependency (the
// photo) is applied there. The example also reports the remote visibility
// lag and Global-Write-Stable times the paper's geo evaluation measures.
//
//   $ ./build/examples/geo_photo_app
#include <cstdio>
#include <string>

#include "src/harness/cluster.h"

using namespace chainreaction;

int main() {
  ClusterOptions opts;
  opts.system = SystemKind::kChainReaction;
  opts.servers_per_dc = 8;
  opts.clients_per_dc = 1;
  opts.num_dcs = 2;
  opts.net.default_inter_site = LinkModel{80 * kMillisecond, 5 * kMillisecond};
  Cluster cluster(opts);

  ChainReactionClient* uploader = cluster.crx_client(0);  // DC 0
  ChainReactionClient* follower = cluster.crx_client(1);  // DC 1

  std::printf("== Geo photo album (2 DCs, 80ms WAN one-way) ==\n\n");

  // Observe geo machinery.
  cluster.geo(1)->on_remote_visible = [&](const Key& key, const Version&, Time now) {
    std::printf("  [geo] '%s' became visible in DC1 at t=%.1fms\n", key.c_str(),
                static_cast<double>(now) / kMillisecond);
  };
  cluster.geo(0)->on_global_stable = [&](const Key& key, const Version&, Time, Time now) {
    std::printf("  [geo] '%s' Global-Write-Stable at t=%.1fms\n", key.c_str(),
                static_cast<double>(now) / kMillisecond);
  };

  // Upload then link — a causal pair.
  uploader->Put("photo:41", "<jpeg bytes>", [&](const ChainReactionClient::PutResult& r) {
    std::printf("DC0 uploader: photo stored locally at t=%.1fms (version %s)\n",
                static_cast<double>(cluster.sim()->Now()) / kMillisecond,
                r.version.ToString().c_str());
    uploader->Put("album:vacation", "photo:41", [&](const ChainReactionClient::PutResult& r2) {
      std::printf("DC0 uploader: album updated locally at t=%.1fms, carrying %zu dep(s)\n",
                  static_cast<double>(cluster.sim()->Now()) / kMillisecond, r2.deps.size());
    });
  });

  // The follower polls the album every 10 ms. The first time the album
  // references the photo, the photo must already be readable in DC 1.
  int polls = 0;
  bool saw_link = false;
  std::function<void()> poll = [&]() {
    if (saw_link || polls > 100) {
      return;
    }
    polls++;
    follower->Get("album:vacation", [&](const ChainReactionClient::GetResult& album) {
      if (album.found && album.value == "photo:41") {
        saw_link = true;
        const double t = static_cast<double>(cluster.sim()->Now()) / kMillisecond;
        std::printf("DC1 follower: album references photo:41 at t=%.1fms (poll #%d)\n", t,
                    polls);
        follower->Get("photo:41", [&](const ChainReactionClient::GetResult& photo) {
          if (photo.found) {
            std::printf("DC1 follower: photo:41 readable -> causal order preserved\n");
          } else {
            std::printf("DC1 follower: PHOTO MISSING -> causality violated!\n");
          }
        });
        return;
      }
      cluster.client_env(1)->Schedule(10 * kMillisecond, poll);
    });
  };
  poll();

  cluster.sim()->Run();

  std::printf("\nGeo replicator stats: dc0 shipped=%llu; dc1 received=%llu applied=%llu "
              "parked=%llu\n",
              static_cast<unsigned long long>(cluster.geo(0)->updates_shipped()),
              static_cast<unsigned long long>(cluster.geo(1)->updates_received()),
              static_cast<unsigned long long>(cluster.geo(1)->updates_applied()),
              static_cast<unsigned long long>(cluster.geo(1)->updates_parked()));
  std::string diag;
  std::printf("Cross-DC convergence check: %s\n",
              cluster.CheckConvergence(&diag) ? "OK" : diag.c_str());
  return 0;
}

// Quickstart: stand up a simulated ChainReaction datacenter, write and read
// through the client library, and watch the paper's client metadata
// (version, chain_index) evolve.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/harness/cluster.h"

using namespace chainreaction;

int main() {
  // An 8-server datacenter with chains of length 3, acks after k=2 nodes.
  ClusterOptions options;
  options.system = SystemKind::kChainReaction;
  options.servers_per_dc = 8;
  options.clients_per_dc = 2;
  options.replication = 3;
  options.k_stability = 2;
  Cluster cluster(options);

  ChainReactionClient* alice = cluster.crx_client(0);
  ChainReactionClient* bob = cluster.crx_client(1);

  std::printf("== ChainReaction quickstart ==\n\n");

  // 1. Alice writes. The ack arrives as soon as the first k=2 chain nodes
  //    applied the write; metadata records (version, chain_index=2).
  alice->Put("greeting", "hello causal world", [&](const ChainReactionClient::PutResult& r) {
    std::printf("alice: put acked, version %s (t=%lldus)\n", r.version.ToString().c_str(),
                static_cast<long long>(cluster.sim()->Now()));
  });
  cluster.sim()->Run();

  Version v;
  ChainIndex index = 0;
  alice->LookupMetadata("greeting", &v, &index);
  std::printf("alice: metadata after put  -> version=%s chain_index=%u (may read %u node%s)\n",
              v.ToString().c_str(), index, index, index == 1 ? "" : "s");

  // 2. Alice reads her own write. By now the write reached the tail
  //    (DC-Write-Stable), so the reply lets her spread future reads over
  //    the whole chain.
  alice->Get("greeting", [&](const ChainReactionClient::GetResult& r) {
    std::printf("alice: get -> '%s' from chain position %u\n", r.value.c_str(),
                r.answered_by_position);
  });
  cluster.sim()->Run();
  alice->LookupMetadata("greeting", &v, &index);
  std::printf("alice: metadata after read -> chain_index=%u (stable: whole chain)\n\n", index);

  // 3. Bob has no session history, so his first read may hit any replica —
  //    safe, because writes only become visible after their causal
  //    dependencies are stable on every replica.
  for (int i = 0; i < 3; ++i) {
    bob->Get("greeting", [&](const ChainReactionClient::GetResult& r) {
      std::printf("bob:   get -> '%s' from chain position %u\n", r.value.c_str(),
                  r.answered_by_position);
    });
    cluster.sim()->Run();
  }

  // 4. A causal chain across keys: Bob reacts to what he read.
  bob->Put("reply", "hi alice!", [&](const ChainReactionClient::PutResult& r) {
    std::printf("\nbob:   put 'reply' carried %zu dependency(ies) on the wire\n", r.deps.size());
    for (const Dependency& d : r.deps) {
      std::printf("       dep: key='%s' version=%s\n", d.key.c_str(),
                  d.version.ToString().c_str());
    }
    if (r.deps.empty()) {
      std::printf("       (bob read 'greeting' as already DC-Write-Stable, so the client\n"
                  "        library dropped the dependency — the metadata optimization)\n");
    }
  });
  cluster.sim()->Run();

  std::printf("\nDone: %llu messages simulated, %llu bytes on the (simulated) wire.\n",
              static_cast<unsigned long long>(cluster.net()->messages_delivered()),
              static_cast<unsigned long long>(cluster.net()->bytes_sent()));
  return 0;
}
